"""Monetary-cost model for one epoch — paper Eq. (4) and (5).

``c'(θ) = n * p_ivk + n * t'(θ) * p_f(m) + c_s(θ)`` where the storage term
depends on the service's pricing pattern (Eq. 5):

* request-charged (S3, DynamoDB): ``k * (10n + 2) * p_s`` — the paper's
  accounting of ~10 requests per function per BSP round plus 2 bookkeeping
  requests, priced per request (size-dependent for DynamoDB);
* runtime-charged (ElastiCache, VM-PS): ``(t' / 60 + 1) * p_s`` — the
  provisioned node is billed per minute for the epoch's duration, with
  per-minute rounding.
"""

from __future__ import annotations

from repro.common.types import (
    Allocation,
    EpochCostBreakdown,
    EpochTimeBreakdown,
    PricingPattern,
)
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.analytical.timemodel import epoch_time
from repro.ml.models import Workload


def function_price_per_second(
    memory_mb: int, platform: PlatformConfig = DEFAULT_PLATFORM
) -> float:
    """Lambda compute price p_f(m) in USD per second for one function."""
    return (memory_mb / 1024.0) * platform.pricing.usd_per_gb_second


def storage_cost(
    workload: Workload,
    alloc: Allocation,
    epoch_duration_s: float,
    platform: PlatformConfig = DEFAULT_PLATFORM,
) -> float:
    """Per-epoch external-storage cost c_s(θ) — Eq. (5)."""
    svc = platform.storage_config(alloc.storage)
    if svc.pricing is PricingPattern.REQUEST:
        k = workload.iterations_per_epoch(alloc.n_functions)
        requests = k * (10 * alloc.n_functions + 2)
        return requests * svc.request_price_usd(workload.model_mb)
    # Runtime-charged: provisioned node billed per minute over the epoch.
    return (epoch_duration_s / 60.0 + 1.0) * svc.usd_per_minute


def epoch_cost(
    workload: Workload,
    alloc: Allocation,
    time_breakdown: EpochTimeBreakdown | None = None,
    platform: PlatformConfig = DEFAULT_PLATFORM,
) -> EpochCostBreakdown:
    """Per-epoch monetary-cost breakdown c'(θ) — Eq. (4).

    ``time_breakdown`` may be supplied to price a *measured* epoch (the
    billing layer does this); otherwise the analytical t'(θ) is used.
    """
    t = time_breakdown if time_breakdown is not None else epoch_time(
        workload, alloc, platform
    )
    n = alloc.n_functions
    invocation = n * platform.pricing.usd_per_invocation
    compute = n * t.total_s * function_price_per_second(alloc.memory_mb, platform)
    storage = storage_cost(workload, alloc, t.total_s, platform)
    return EpochCostBreakdown(
        invocation_usd=invocation, compute_usd=compute, storage_usd=storage
    )
