"""The Pareto profiler (paper Fig. 6, §III-B).

Given a workload, evaluates the analytical time/cost models over the
allocation space and extracts the Pareto boundary 𝒫. The profiler records
how many points it evaluated and how long profiling took, which feeds the
scheduling-overhead experiment (Fig. 21: CE-scaling vs WO-pa).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import InfeasibleAllocationError, ValidationError
from repro.common.types import Allocation
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.analytical.costmodel import epoch_cost
from repro.analytical.pareto import ProfiledAllocation, pareto_front
from repro.analytical.space import AllocationSpace, default_space
from repro.analytical.timemodel import epoch_time
from repro.ml.models import Workload
from repro.profiling import profile_phase
from repro.profiling.clock import host_clock_s
from repro.telemetry import get_registry


@dataclass
class ProfileResult:
    """Output of one profiling pass.

    Attributes:
        all_points: every feasible allocation with its (time, cost).
        pareto: the Pareto subset 𝒫, sorted fastest-first.
        evaluated: number of grid points considered (incl. infeasible).
        profile_time_s: wall-clock profiling time.
    """

    all_points: list[ProfiledAllocation]
    pareto: list[ProfiledAllocation]
    evaluated: int
    profile_time_s: float

    @property
    def candidates(self) -> list[ProfiledAllocation]:
        """Planner-facing candidate set (𝒫)."""
        return self.pareto

    def cheapest(self) -> ProfiledAllocation:
        """The minimum-cost point on 𝒫 (slowest end of the boundary)."""
        return min(self.pareto, key=lambda p: p.cost_usd)

    def fastest(self) -> ProfiledAllocation:
        """The minimum-time point on 𝒫 (most expensive end)."""
        return min(self.pareto, key=lambda p: p.time_s)

    def lookup(self, allocation: Allocation) -> ProfiledAllocation:
        """Profiled entry for a specific allocation."""
        for p in self.all_points:
            if p.allocation == allocation:
                return p
        raise ValidationError(f"allocation {allocation.describe()} was not profiled")


@dataclass
class ParetoProfiler:
    """Profiles a workload's allocation space and extracts 𝒫.

    Setting ``use_pareto=False`` reproduces the paper's WO-pa ablation: the
    planner then searches all feasible points instead of the boundary.
    """

    platform: PlatformConfig = field(default_factory=lambda: DEFAULT_PLATFORM)
    space: AllocationSpace = field(default_factory=default_space)
    use_pareto: bool = True

    def profile(self, workload: Workload) -> ProfileResult:
        """Evaluate the space for ``workload`` and return the boundary."""
        start = host_clock_s()
        points: list[ProfiledAllocation] = []
        evaluated = 0
        with profile_phase("profiler/evaluate_space") as ph:
            for alloc in self.space.enumerate():
                evaluated += 1
                try:
                    t = epoch_time(workload, alloc, self.platform)
                except InfeasibleAllocationError:
                    continue
                c = epoch_cost(workload, alloc, t, self.platform)
                points.append(ProfiledAllocation(allocation=alloc, time=t, cost=c))
            ph.add("points_evaluated", evaluated)
        if not points:
            raise InfeasibleAllocationError(
                f"no feasible allocation for workload {workload.name} in the given space"
            )
        with profile_phase("profiler/pareto_front"):
            front = pareto_front(points) if self.use_pareto else sorted(
                points, key=lambda p: p.time_s
            )
        registry = get_registry()
        registry.counter(
            "repro_profiler_points_evaluated_total",
            "Allocation-grid points evaluated by the Pareto profiler",
        ).inc(evaluated)
        registry.gauge(
            "repro_profiler_pareto_pruning_ratio",
            "Fraction of feasible points the boundary keeps "
            "(drives Fig. 21's scheduling-overhead cut)",
        ).set(len(front) / max(1, len(points)))
        return ProfileResult(
            all_points=points,
            pareto=front,
            evaluated=evaluated,
            profile_time_s=host_clock_s() - start,
        )
