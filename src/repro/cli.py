"""Command-line interface.

Usage examples::

    python -m repro list-workloads
    python -m repro profile mobilenet-cifar10
    python -m repro train lr-higgs --budget 2.0 --method ce-scaling
    python -m repro train lr-higgs --telemetry out.json --trace out.trace.json
    python -m repro report out.json
    python -m repro diagnose lr-higgs --budget 2.0
    python -m repro diagnose out.json --trace out.trace.json --format json
    python -m repro tune lr-higgs --trials 256 --budget-multiple 1.3
    python -m repro train lr-higgs --timeseries ts.json
    python -m repro dash --replay ts.json
    python -m repro timeseries diff base.json target.json
    python -m repro experiment fig09 --scale small
    python -m repro experiments
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.common.errors import ReproError, SLOError
from repro.common.types import StorageKind
from repro.common.units import format_duration, format_usd
from repro.ml.models import WORKLOADS, workload
from repro.runs.store import DEFAULT_STORE_ROOT
from repro.telemetry.exporters import from_json_payload
from repro.telemetry.report import RunReport
from repro.telemetry.session import TelemetrySession
from repro.tuning.plan import Objective
from repro.tuning.sha import SHASpec
from repro.experiments.registry import REGISTRY, run_experiment
from repro.workflow.job import training_envelope, tuning_envelope
from repro.workflow.runner import (
    TRAINING_METHODS,
    TUNING_METHODS,
    profile_workload,
    run_training,
    run_tuning,
)


def _parse_storage(value: str | None) -> StorageKind | None:
    if value is None:
        return None
    return StorageKind(value)


def _capture_error(command: str, exc: Exception) -> int:
    """The unified bad-capture/bad-input path: one stderr line, exit 2.

    Every subcommand that loads a versioned artifact (report, diagnose,
    profile --diff/--validate, timeseries diff|validate, dash --replay,
    runs ...) routes its failures here so the contract stays pinned in
    one place.
    """
    print(f"repro {command}: {exc}", file=sys.stderr)
    return 2


def _stamp(args, command: str, workload_name: str | None = None):
    """The run's :class:`~repro.runs.ProvenanceStamp` from CLI context."""
    from repro.runs import ProvenanceStamp

    return ProvenanceStamp.collect(
        command,
        workload=(
            workload_name
            if workload_name is not None
            else getattr(args, "workload", "") or ""
        ),
        method=getattr(args, "method", "") or "",
        seed=getattr(args, "seed", 0),
        argv=getattr(args, "_argv", ()),
    )


def _save_store(args) -> str | None:
    """The --save-run store root, or None when the flag was not given."""
    return getattr(args, "save_run", None)


def _session(args, command: str) -> TelemetrySession:
    """Telemetry capture scoped to one CLI command (no-op without flags).

    ``--save-run`` forces the collectors on (without file writes) so the
    bundle saver can snapshot them after exit.
    """
    return TelemetrySession(
        metrics_path=getattr(args, "telemetry", None),
        trace_path=getattr(args, "trace", None),
        meta=_stamp(args, command),
        force_install=bool(_save_store(args)),
    )


def _slo_session(args, command: str):
    """SLO guarding scoped to one CLI command (inert without flags)."""
    from repro.slo import SLOSession

    return SLOSession(
        spec=getattr(args, "slo", None),
        events_path=getattr(args, "events", None),
        meta=_stamp(args, command),
        force_log=bool(_save_store(args)),
    )


def _finish_slo(slo) -> int:
    """Print the guard's report after a run; 1 if any SLO was violated."""
    if slo.guard is None:
        return 0
    from repro.slo import evaluate_guard

    report = evaluate_guard(slo.guard, meta=slo.meta)
    print()
    print(report.render())
    return 1 if report.violated else 0


def _add_slo_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--slo", metavar="SPEC",
        help="guard the run against a repro-slo/v1 spec file; prints the "
             "SLO report and exits 1 on violation",
    )
    parser.add_argument(
        "--events", metavar="PATH",
        help="write the repro-events/v1 JSONL event log to PATH",
    )


def _add_fault_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", metavar="PLAN",
        help="inject faults from a repro-faults/v1 plan file and enable "
             "the resilience layer (retries, checkpoints, replanning)",
    )
    parser.add_argument(
        "--fault-report", metavar="PATH",
        help="write the fault/recovery ledger as repro-faults-report/v1 "
             "JSON to PATH",
    )


def _fault_plan(args):
    """The FaultPlan named by --faults, or None (raises on a bad file)."""
    path = getattr(args, "faults", None)
    if not path:
        return None
    from repro.faults import FaultPlan

    return FaultPlan.load(path)


def _finish_faults(args, ledger, plan, command: str) -> None:
    """Print the one-line fault summary; write --fault-report if asked."""
    if ledger is None:
        return
    s = ledger.summary()
    print(
        f"faults : {s['n_faults']} injected, {s['n_recoveries']} recovery "
        f"action(s); lost {format_duration(s['fault_time_s'])}, recovery "
        f"overhead {format_duration(s['recovery_time_s'])}"
    )
    out = getattr(args, "fault_report", None)
    if out:
        Path(out).write_text(
            ledger.to_json(
                plan.to_payload() if plan is not None else None,
                meta=_stamp(args, command),
            )
        )


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", metavar="PATH",
        help="write JSON telemetry (metrics + run summary) to PATH; "
             "inspect later with `repro report PATH`",
    )
    parser.add_argument(
        "--trace", metavar="PATH",
        help="write a Chrome trace (load in Perfetto) to PATH",
    )


def _add_profile_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", metavar="PATH",
        help="profile the run's hot paths; write the repro-profile/v1 "
             "capture to PATH (diff later with `repro profile --diff`)",
    )
    parser.add_argument(
        "--flamegraph", metavar="PATH",
        help="write a collapsed-stack flamegraph (flamegraph.pl / inferno "
             "/ speedscope input) to PATH",
    )


def _profile_session(args, command: str):
    """Hot-path profiling scoped to one CLI command (inert without flags)."""
    from repro.profiling.session import ProfileSession

    return ProfileSession(
        profile_path=getattr(args, "profile", None),
        flamegraph_path=getattr(args, "flamegraph", None),
        meta=_stamp(args, command),
    )


def _finish_profile(args, prof) -> None:
    """Report capture paths; merge profiler frames into a --trace file.

    Runs after the telemetry session has written the Chrome trace, so the
    profiler's host-time spans are appended to the finished document.
    """
    if prof.profiler is None:
        return
    trace = getattr(args, "trace", None)
    if trace:
        from repro.profiling import augment_chrome_trace

        path = Path(trace)
        path.write_text(augment_chrome_trace(path.read_text(), prof.profiler))
    totals = prof.payload()["totals"]
    wrote = [str(p) for p in (prof.profile_path, prof.flamegraph_path) if p]
    print(
        f"profile : {totals['n_frames']} frame(s), {totals['n_calls']} "
        f"call(s) -> {', '.join(wrote)}"
    )


def _add_timeseries_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeseries", metavar="PATH",
        help="sample resource time-series (concurrency, warm pool, storage "
             "bandwidth, cost, ...) on the simulated clock; write the "
             "repro-timeseries/v1 capture to PATH (view with `repro dash "
             "--replay PATH`)",
    )


def _timeseries_session(args, command: str):
    """Time-series sampling scoped to one CLI command (inert without flags).

    Must enter *after* the SLO session so a live event bus is already
    installed when the sampler subscribes its marker hook.
    """
    from repro.timeseries import TimeSeriesSession

    return TimeSeriesSession(
        capture_path=getattr(args, "timeseries", None),
        meta=_stamp(args, command),
        force_install=bool(_save_store(args)),
    )


def _peaks(summary: dict, tser) -> dict:
    """Attach high-water marks to a run summary when sampling was live.

    Sampler-off runs keep their exact pre-existing telemetry bytes; the
    ``peaks`` block only exists when ``--timeseries`` was given.
    """
    if tser.sampler is not None:
        from repro.timeseries import peaks_summary

        summary["peaks"] = peaks_summary(tser.sampler)
    return summary


def _finish_timeseries(tser) -> None:
    """One-line confirmation of what the sampler captured and wrote."""
    if tser.sampler is None or tser.capture_path is None:
        return
    sampler = tser.sampler
    print(
        f"timeseries : {len(sampler.series)} series, "
        f"{sampler.n_points()} point(s), {len(sampler.markers)} marker(s) "
        f"-> {tser.capture_path}"
    )


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--save-run", nargs="?", const=DEFAULT_STORE_ROOT, metavar="STORE",
        help="bundle every enabled capture (plus telemetry, trace, events "
             "and timeseries, forced on) into the content-addressed run "
             f"store (default {DEFAULT_STORE_ROOT}); inspect with "
             "`repro runs list|show|compare`",
    )


def _save_run_bundle(
    args, command: str, session, slo, prof, tser, ledger=None, plan=None
) -> None:
    """The ``--save-run`` ride-along: snapshot the sessions into the store."""
    store_root = _save_store(args)
    if not store_root:
        return
    from repro.runs import RunStore, save_run

    bundle = save_run(
        RunStore(store_root),
        _stamp(args, command),
        telemetry=session,
        slo=slo,
        profile=prof,
        timeseries=tser,
        fault_ledger=ledger,
        fault_plan=plan,
    )
    print(
        f"run    : {bundle.run_id} ({len(bundle.artifacts)} artifact(s)) "
        f"-> {store_root}"
    )


def cmd_list_workloads(_args) -> int:
    print(f"{'name':20s} {'model MB':>10s} {'dataset MB':>12s} "
          f"{'batch':>8s} {'target loss':>12s}")
    for name, w in sorted(WORKLOADS.items()):
        print(f"{name:20s} {w.model_mb:>10.3f} {w.dataset_mb:>12.0f} "
              f"{w.batch_size:>8d} {w.target_loss:>12.3f}")
    return 0


def _profile_diff(args) -> int:
    """``repro profile --diff BASE TARGET``: per-frame deltas; 1 on regression."""
    from repro.profiling import (
        diff_captures,
        diff_to_json,
        has_regressions,
        load_capture,
        render_diff,
    )

    base_path, target_path = args.diff
    try:
        base = load_capture(Path(base_path).read_text())
        target = load_capture(Path(target_path).read_text())
    except (OSError, ValueError, ReproError) as exc:
        return _capture_error("profile", exc)
    report = diff_captures(
        base, target, threshold=args.threshold, min_s=args.min_s,
        meta={"base": base_path, "target": target_path},
    )
    if args.out:
        Path(args.out).write_text(diff_to_json(report))
    if args.format == "json":
        print(diff_to_json(report), end="")
    else:
        print(render_diff(report))
    return 1 if has_regressions(report) else 0


def _profile_validate(args) -> int:
    """``repro profile --validate PATH``: check a capture's schema contract."""
    from repro.profiling import load_capture
    from repro.analysis.rules.schema import SCHEMA_KEYS

    try:
        payload = load_capture(Path(args.validate).read_text())
    except (OSError, ValueError, ReproError) as exc:
        return _capture_error("profile", exc)
    # Belt and braces: the capture must also match the REP006 registry's
    # pinned key set, so a drifted registry fails loudly here, not in lint.
    expected = SCHEMA_KEYS.get(payload["schema"])
    if expected is None or set(payload) != expected:
        print(
            f"repro profile: capture keys {sorted(payload)} disagree with "
            f"the REP006 registry entry for {payload['schema']!r}",
            file=sys.stderr,
        )
        return 2
    totals = payload["totals"]
    print(
        f"valid {payload['schema']} capture: {totals['n_frames']} frame(s), "
        f"{totals['n_calls']} call(s), "
        f"{format_duration(totals['wall_s'])} attributed"
    )
    return 0


def _profile_run(args) -> int:
    """``repro profile WORKLOAD --run MODE``: profile one entry point."""
    from repro.profiling import render_capture
    from repro.profiling.session import ProfileSession

    if not args.workload:
        print(
            f"repro profile: --run {args.run} needs a workload name",
            file=sys.stderr,
        )
        return 2
    prof = ProfileSession(
        profile_path=args.out,
        flamegraph_path=args.flamegraph,
        sample_memory=args.memory,
        force_install=True,
        meta=_stamp(args, f"profile --run {args.run}"),
    )
    try:
        with prof:
            if args.run == "train":
                w = workload(args.workload)
                wprofile = profile_workload(
                    w, storage_pin=_parse_storage(args.storage)
                )
                env = training_envelope(w, wprofile)
                budget = (
                    args.budget if args.budget is not None
                    else env.budget(args.budget_multiple or 2.5)
                )
                run_training(
                    w, method=args.method,
                    objective=Objective.MIN_JCT_GIVEN_BUDGET,
                    budget_usd=budget, seed=args.seed, profile=wprofile,
                    storage_pin=_parse_storage(args.storage),
                )
            elif args.run == "tune":
                w = workload(args.workload)
                spec = SHASpec(args.trials, args.eta, args.epochs_per_stage)
                wprofile = profile_workload(w)
                env = tuning_envelope(wprofile, spec)
                budget = (
                    args.budget if args.budget is not None
                    else env.budget(args.budget_multiple or 1.3)
                )
                run_tuning(
                    w, spec, method=args.method,
                    objective=Objective.MIN_JCT_GIVEN_BUDGET,
                    budget_usd=budget, seed=args.seed, profile=wprofile,
                )
            else:  # workflow
                from repro.workflow.campaign import run_workflow

                spec = SHASpec(args.trials, args.eta, args.epochs_per_stage)
                run_workflow(
                    args.workload, spec,
                    budget_usd=args.budget if args.budget is not None else 25.0,
                    tuning_fraction=args.tuning_fraction, seed=args.seed,
                )
    except (OSError, ValueError, ReproError) as exc:
        print(f"repro profile: {exc}", file=sys.stderr)
        return 2
    print(render_capture(prof.payload(), top=args.top))
    return 0


def cmd_profile(args) -> int:
    if args.diff:
        return _profile_diff(args)
    if args.validate:
        return _profile_validate(args)
    if args.run:
        return _profile_run(args)
    if not args.workload:
        print(
            "repro profile: a workload name is required unless --diff or "
            "--validate is given",
            file=sys.stderr,
        )
        return 2
    w = workload(args.workload)
    profile = profile_workload(w, storage_pin=_parse_storage(args.storage))
    print(f"{len(profile.all_points)} feasible allocations, "
          f"{len(profile.pareto)} on the Pareto boundary "
          f"({profile.profile_time_s * 1e3:.1f} ms)\n")
    print(f"{'allocation':28s} {'epoch time':>12s} {'epoch cost':>12s}")
    for p in sorted(profile.pareto, key=lambda q: q.time_s):
        print(f"{p.allocation.describe():28s} "
              f"{format_duration(p.time_s):>12s} {format_usd(p.cost_usd):>12s}")
    return 0


def _journal_header(args, command: str) -> dict:
    """The ``repro-journal/v1`` header payload: everything ``repro
    resume`` needs to re-execute the run under the original identity
    (flags *and* argv, since provenance metadata embeds argv)."""
    saved = {k: v for k, v in vars(args).items() if k != "fn"}
    saved["_argv"] = [str(a) for a in saved.get("_argv", ())]
    return {"command": command, "args": saved}


def cmd_train(args, journal=None) -> int:
    w = workload(args.workload)
    try:
        slo = _slo_session(args, "train")
        plan = _fault_plan(args)
        journal_path = getattr(args, "journal", None)
        if journal is None and journal_path:
            from repro.kernel import RunJournal

            journal = RunJournal.create(
                journal_path, run=_journal_header(args, "train")
            )
    except (OSError, ValueError, ReproError) as exc:
        print(f"repro train: {exc}", file=sys.stderr)
        return 2
    prof = _profile_session(args, "train")
    tser = _timeseries_session(args, "train")
    with _session(args, "train") as session, slo, prof, tser:
        profile = profile_workload(w, storage_pin=_parse_storage(args.storage))
        env = training_envelope(w, profile)
        if args.qos_multiple is not None:
            objective = Objective.MIN_COST_GIVEN_QOS
            budget, qos = None, env.qos(args.qos_multiple)
            print(f"objective: min cost, QoS {format_duration(qos)}")
        else:
            objective = Objective.MIN_JCT_GIVEN_BUDGET
            budget = (
                args.budget if args.budget is not None
                else env.budget(args.budget_multiple)
            )
            qos = None
            print(f"objective: min JCT, budget {format_usd(budget)}")
        run = run_training(
            w, method=args.method, objective=objective, budget_usd=budget,
            qos_s=qos, seed=args.seed, profile=profile,
            storage_pin=_parse_storage(args.storage),
            fault_plan=plan,
            journal=journal,
        )
        r = run.result
        session.set_run_summary(
            _peaks(
                {
                    "jct_s": r.jct_s,
                    "cost_usd": r.cost_usd,
                    "converged": r.converged,
                    "n_epochs": len(r.epochs),
                    "n_restarts": r.n_restarts,
                    "comm_overhead_s": r.comm_overhead_s,
                    "scheduling_overhead_s": r.scheduling_overhead_s,
                    "storage_cost_usd": r.storage_cost_usd,
                    # Constraint context, so `repro diagnose` on this capture
                    # can re-judge the scheduler's decisions (ex-post regret).
                    "objective": objective.value,
                    "budget_usd": budget,
                    "qos_s": qos,
                },
                tser,
            )
        )
    print(f"method={args.method}  converged={r.converged}  "
          f"epochs={len(r.epochs)}  restarts={r.n_restarts}")
    print(f"JCT  {format_duration(r.jct_s)}   cost {format_usd(r.cost_usd)}")
    print(f"comm {format_duration(r.comm_overhead_s)}   "
          f"storage {format_usd(r.storage_cost_usd)}   "
          f"scheduling {format_duration(r.scheduling_overhead_s)}")
    _finish_faults(args, run.fault_ledger, plan, "train")
    _finish_profile(args, prof)
    _finish_timeseries(tser)
    _save_run_bundle(
        args, "train", session, slo, prof, tser,
        ledger=run.fault_ledger, plan=plan,
    )
    if journal is not None:
        # Commit only after the bundle is durable: an interrupted save
        # leaves the journal resumable, and resume regenerates the exact
        # same bundle (content-addressed store; identical bytes dedup).
        journal.commit(
            {"jct_s": r.jct_s, "cost_usd": r.cost_usd,
             "n_epochs": len(r.epochs), "converged": r.converged}
        )
        journal.close()
        print(f"journal: {len(r.epochs)} epoch boundary(ies) committed")
    return _finish_slo(slo)


def cmd_resume(args) -> int:
    """``repro resume JOURNAL``: continue an interrupted journaled run.

    Reopens the write-ahead log (truncating any torn tail the crash left),
    re-executes the run from its journal header under the original argv,
    validates every replayed epoch boundary against the journaled prefix,
    and continues past it — finishing to the same run id and the same
    deterministic-artifact bytes as an uninterrupted run.
    """
    from repro.kernel import RunJournal

    try:
        journal = RunJournal.open_resume(args.journal)
    except (OSError, ReproError) as exc:
        return _capture_error("resume", exc)
    run = journal.header.get("run") or {}
    command = run.get("command")
    if command != "train":
        print(
            f"repro resume: journal command {command!r} is not resumable",
            file=sys.stderr,
        )
        journal.close()
        return 2
    if journal.committed and not args.force:
        print(
            f"journal: already committed ({journal.n_epochs_journaled} epoch "
            "boundary(ies)); nothing to resume (use --force to re-execute)"
        )
        journal.close()
        return 0
    saved = dict(run.get("args") or {})
    saved.pop("fn", None)
    saved["_argv"] = tuple(saved.get("_argv") or ())
    print(
        f"resume : replaying {journal.n_epochs_journaled} journaled epoch "
        f"boundary(ies) from {args.journal}"
    )
    with journal:
        return cmd_train(argparse.Namespace(**saved), journal=journal)


def cmd_tune(args) -> int:
    w = workload(args.workload)
    spec = SHASpec(args.trials, args.eta, args.epochs_per_stage)
    try:
        slo = _slo_session(args, "tune")
        plan = _fault_plan(args)
    except (OSError, ValueError, ReproError) as exc:
        print(f"repro tune: {exc}", file=sys.stderr)
        return 2
    prof = _profile_session(args, "tune")
    tser = _timeseries_session(args, "tune")
    with _session(args, "tune") as session, slo, prof, tser:
        profile = profile_workload(w)
        env = tuning_envelope(profile, spec)
        budget = env.budget(args.budget_multiple)
        run = run_tuning(
            w, spec, method=args.method,
            objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget, seed=args.seed, profile=profile,
            fault_plan=plan,
        )
        r = run.result
        session.set_run_summary(
            _peaks(
                {
                    "jct_s": r.jct_s,
                    "cost_usd": r.cost_usd,
                    "comm_overhead_s": r.comm_overhead_s,
                    "scheduling_overhead_s": r.scheduling_overhead_s,
                    "n_stages": len(r.stages),
                },
                tser,
            )
        )
    print(f"SHA {spec.n_trials} trials / {spec.n_stages} stages; "
          f"budget {format_usd(budget)}")
    print(f"method={args.method}  JCT {format_duration(r.jct_s)}  "
          f"cost {format_usd(r.cost_usd)}")
    print(f"winner: lr={r.winner.learning_rate:.2e} "
          f"momentum={r.winner.momentum:.2f} (quality {r.winner.quality:.2f})")
    _finish_faults(args, run.fault_ledger, plan, "tune")
    _finish_profile(args, prof)
    _finish_timeseries(tser)
    _save_run_bundle(
        args, "tune", session, slo, prof, tser,
        ledger=run.fault_ledger, plan=plan,
    )
    return _finish_slo(slo)


def cmd_workflow(args) -> int:
    from repro.workflow.campaign import run_workflow

    spec = SHASpec(args.trials, args.eta, args.epochs_per_stage)
    try:
        slo = _slo_session(args, "workflow")
        plan = _fault_plan(args)
    except (OSError, ValueError, ReproError) as exc:
        print(f"repro workflow: {exc}", file=sys.stderr)
        return 2
    prof = _profile_session(args, "workflow")
    tser = _timeseries_session(args, "workflow")
    with _session(args, "workflow") as session, slo, prof, tser:
        result = run_workflow(
            args.workload, spec, budget_usd=args.budget,
            tuning_fraction=args.tuning_fraction, seed=args.seed,
            fault_plan=plan,
        )
        session.set_run_summary(
            _peaks(
                {
                    "jct_s": result.total_jct_s,
                    "cost_usd": result.total_cost_usd,
                    "converged": result.training.converged,
                    "comm_overhead_s": (
                        result.tuning.comm_overhead_s
                        + result.training.comm_overhead_s
                    ),
                    "scheduling_overhead_s": (
                        result.tuning.scheduling_overhead_s
                        + result.training.scheduling_overhead_s
                    ),
                },
                tser,
            )
        )
    print(f"tuning : JCT {format_duration(result.tuning.jct_s)}  "
          f"cost {format_usd(result.tuning.cost_usd)}  "
          f"winner lr={result.winner.learning_rate:.2e} "
          f"(quality {result.winner.quality:.2f})")
    print(f"training: JCT {format_duration(result.training.jct_s)}  "
          f"cost {format_usd(result.training.cost_usd)}  "
          f"converged={result.training.converged}")
    print(f"total  : JCT {format_duration(result.total_jct_s)}  "
          f"cost {format_usd(result.total_cost_usd)} / "
          f"{format_usd(args.budget)}")
    _finish_faults(args, result.fault_ledger, plan, "workflow")
    _finish_profile(args, prof)
    _finish_timeseries(tser)
    _save_run_bundle(
        args, "workflow", session, slo, prof, tser,
        ledger=result.fault_ledger, plan=plan,
    )
    return _finish_slo(slo)


def cmd_report(args) -> int:
    try:
        payload = from_json_payload(Path(args.path).read_text())
    except (OSError, ValueError) as exc:
        return _capture_error("report", exc)
    if args.format == "prometheus":
        from repro.telemetry.exporters import payload_to_snapshots, to_prometheus_text

        print(to_prometheus_text(payload_to_snapshots(payload["metrics"])), end="")
    elif args.format == "json":
        print(RunReport.from_payload(payload).to_json(), end="")
    else:
        print(RunReport.from_payload(payload).render())
    return 0


def cmd_dash(args) -> int:
    """``repro dash``: terminal dashboard, from a live run or a capture."""
    from repro.timeseries import TimeSeriesSession, load_capture, render_dashboard

    if args.replay:
        try:
            payload = load_capture(Path(args.replay).read_text())
        except (OSError, ValueError, ReproError) as exc:
            return _capture_error("dash", exc)
        print(render_dashboard(payload, width=args.width), end="")
        return 0
    if not args.workload:
        print(
            "repro dash: a workload name is required unless --replay is given",
            file=sys.stderr,
        )
        return 2
    try:
        plan = _fault_plan(args)
    except (OSError, ValueError, ReproError) as exc:
        print(f"repro dash: {exc}", file=sys.stderr)
        return 2
    tser = TimeSeriesSession(
        capture_path=args.out,
        force_install=True,
        meta=_stamp(args, "dash"),
    )
    try:
        with tser:
            w = workload(args.workload)
            profile = profile_workload(w)
            env = training_envelope(w, profile)
            budget = (
                args.budget if args.budget is not None
                else env.budget(args.budget_multiple)
            )
            run_training(
                w, method=args.method,
                objective=Objective.MIN_JCT_GIVEN_BUDGET,
                budget_usd=budget, seed=args.seed, profile=profile,
                fault_plan=plan,
            )
    except (OSError, ValueError, ReproError) as exc:
        print(f"repro dash: {exc}", file=sys.stderr)
        return 2
    print(render_dashboard(tser.payload(), width=args.width), end="")
    return 0


def cmd_timeseries(args) -> int:
    """``repro timeseries``: validate and diff saved captures."""
    from repro.timeseries import (
        diff_captures,
        diff_to_json,
        has_drift,
        load_capture,
        render_diff,
    )

    if args.action == "validate":
        if len(args.paths) != 1:
            print(
                "repro timeseries: validate needs exactly one capture PATH",
                file=sys.stderr,
            )
            return 2
        try:
            payload = load_capture(Path(args.paths[0]).read_text())
        except (OSError, ValueError, ReproError) as exc:
            return _capture_error("timeseries", exc)
        # Belt and braces, as in `repro profile --validate`: the capture
        # must also match the REP006 registry's pinned key set.
        from repro.analysis.rules.schema import SCHEMA_KEYS

        expected = SCHEMA_KEYS.get(payload["schema"])
        if expected is None or set(payload) != expected:
            print(
                f"repro timeseries: capture keys {sorted(payload)} disagree "
                f"with the REP006 registry entry for {payload['schema']!r}",
                file=sys.stderr,
            )
            return 2
        totals = payload["totals"]
        print(
            f"valid {payload['schema']} capture: {totals['n_series']} "
            f"series, {totals['n_points']} point(s) from "
            f"{totals['n_samples']} sample(s), {len(payload['markers'])} "
            f"marker(s)"
        )
        return 0
    # diff
    if len(args.paths) != 2:
        print(
            "repro timeseries: diff needs BASE and TARGET capture paths",
            file=sys.stderr,
        )
        return 2
    base_path, target_path = args.paths
    try:
        base = load_capture(Path(base_path).read_text())
        target = load_capture(Path(target_path).read_text())
    except (OSError, ValueError, ReproError) as exc:
        return _capture_error("timeseries", exc)
    report = diff_captures(
        base, target, threshold=args.threshold,
        meta={"base": base_path, "target": target_path},
    )
    if args.out:
        Path(args.out).write_text(diff_to_json(report))
    if args.format == "json":
        print(diff_to_json(report), end="")
    else:
        print(render_diff(report))
    return 1 if has_drift(report) else 0


def _parse_stragglers(values: list[str]) -> dict[int, float]:
    """Parse repeated ``RANK:FACTOR`` fault-injection flags."""
    out: dict[int, float] = {}
    for item in values:
        rank, _, factor = item.partition(":")
        try:
            out[int(rank)] = float(factor)
        except ValueError:
            raise SystemExit(f"--straggler expects RANK:FACTOR, got {item!r}")
    return out


def cmd_diagnose(args) -> int:
    import json

    from repro.diagnostics import RunObservation, diagnose
    from repro.telemetry import get_registry, set_registry
    from repro.telemetry.metrics import MetricsRegistry

    slo_spec = None
    if getattr(args, "slo", None):
        from repro.slo import SLOSpec

        try:
            slo_spec = SLOSpec.load(args.slo)
        except (OSError, ValueError, SLOError) as exc:
            print(f"repro diagnose: {exc}", file=sys.stderr)
            return 2
    try:
        fault_plan = _fault_plan(args)
    except (OSError, ValueError, ReproError) as exc:
        print(f"repro diagnose: {exc}", file=sys.stderr)
        return 2
    faults_summary = None
    ts_payload = None
    target = Path(args.target)
    candidates = None
    if target.exists():
        # Capture mode: a telemetry JSON written by --telemetry, plus
        # (optionally) the matching Chrome trace for the epoch timeline.
        try:
            payload = from_json_payload(target.read_text())
            trace = json.loads(Path(args.trace).read_text()) if args.trace else None
        except (OSError, ValueError) as exc:
            return _capture_error("diagnose", exc)
        obs = RunObservation.from_capture(payload, trace)
        if getattr(args, "timeseries", None):
            # Capture mode: --timeseries names a saved repro-timeseries/v1
            # capture; its series feed the anomaly detector.
            from repro.timeseries import load_capture

            try:
                ts_payload = load_capture(Path(args.timeseries).read_text())
            except (OSError, ValueError, ReproError) as exc:
                return _capture_error("diagnose", exc)
    elif target.suffix in (".json", ".jsonl") or "/" in args.target:
        # Looks like a capture path, not a workload name: don't fall
        # through to live mode on a typo'd filename.
        print(
            f"repro diagnose: capture file {args.target} does not exist",
            file=sys.stderr,
        )
        return 2
    else:
        # Live mode: run the training job here, then diagnose it in full
        # fidelity (per-worker timings, restart split, Pareto candidates).
        w = workload(args.target)
        profile = profile_workload(w, storage_pin=_parse_storage(args.storage))
        env = training_envelope(w, profile)
        if args.qos_multiple is not None:
            objective = Objective.MIN_COST_GIVEN_QOS
            budget, qos = None, env.qos(args.qos_multiple)
        else:
            objective = Objective.MIN_JCT_GIVEN_BUDGET
            budget = (
                args.budget if args.budget is not None
                else env.budget(args.budget_multiple)
            )
            qos = None
        registry = MetricsRegistry()
        prev = get_registry()
        set_registry(registry)
        # Live mode: --timeseries samples this run and writes the capture
        # to that path; the fresh series feed the anomaly detector.
        from repro.timeseries import TimeSeriesSession

        tser = TimeSeriesSession(
            capture_path=getattr(args, "timeseries", None),
            meta=_stamp(args, "diagnose", workload_name=args.target),
        )
        try:
            with tser:
                run = run_training(
                    w, method=args.method, objective=objective,
                    budget_usd=budget,
                    qos_s=qos, seed=args.seed, profile=profile,
                    storage_pin=_parse_storage(args.storage),
                    straggler_factors=_parse_stragglers(args.straggler),
                    fault_plan=fault_plan,
                )
        finally:
            set_registry(prev)
        if tser.sampler is not None:
            ts_payload = tser.payload()
        obs = RunObservation.from_training_run(run, registry=registry)
        candidates = run.profile.candidates
        faults_summary = run.result.extra.get("faults")
    if faults_summary is None and getattr(args, "fault_report", None):
        # A saved repro-faults-report/v1 (written with --fault-report on
        # the original run) supplies the attribution for capture mode.
        try:
            payload = json.loads(Path(args.fault_report).read_text())
            faults_summary = dict(payload.get("summary") or {})
        except (OSError, ValueError) as exc:
            return _capture_error("diagnose", exc)
    report = diagnose(
        obs, candidates=candidates, top_k=args.top_k, z=args.z,
        drift_threshold=args.drift_threshold, slo_spec=slo_spec,
        faults=faults_summary, timeseries=ts_payload,
    )
    if args.out:
        Path(args.out).write_text(report.to_json())
    if args.format == "json":
        print(report.to_json(), end="")
    else:
        print(report.render())
    return 0


def _evaluate_capture(spec, capture: str):
    """Judge a spec against a saved capture (events log or telemetry)."""
    from repro.slo import evaluate_summary, replay_events

    path = Path(capture)
    if path.is_dir():
        events = path / "events.jsonl"
        telemetry = path / "telemetry.json"
        if events.exists():
            path = events
        elif telemetry.exists():
            path = telemetry
        else:
            raise SLOError(
                f"capture directory {capture} has neither events.jsonl "
                "nor telemetry.json"
            )
    if path.suffix == ".jsonl":
        return replay_events(spec, path.read_text())
    payload = from_json_payload(path.read_text())
    run = payload.get("run") or {}
    if "jct_s" not in run:
        raise SLOError(f"telemetry capture {path} has no run summary to judge")
    return evaluate_summary(
        spec,
        float(run["jct_s"]),
        run.get("cost_usd"),
        meta=dict(payload.get("meta") or {}),
    )


def _run_guarded(spec, args):
    """Run one training job under the guard; returns the SLO report."""
    from repro.slo import SLOSession, evaluate_guard

    w = workload(args.workload)
    profile = profile_workload(w)
    env = training_envelope(w, profile)
    budget = (
        args.budget if args.budget is not None
        else env.budget(args.budget_multiple)
    )
    session = SLOSession(
        spec=spec,
        events_path=getattr(args, "events", None),
        meta=_stamp(args, "slo"),
    )
    with session:
        run_training(
            w, method=args.method, objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget, seed=args.seed, profile=profile,
        )
    return evaluate_guard(session.guard, meta=session.meta)


def cmd_slo(args) -> int:
    from repro.slo import SLOSpec

    try:
        spec = SLOSpec.load(args.spec)
        if args.capture:
            report = _evaluate_capture(spec, args.capture)
        elif args.workload:
            report = _run_guarded(spec, args)
        else:
            raise SLOError("provide --capture PATH or a workload name to run")
    except (OSError, ValueError, SLOError) as exc:
        print(f"repro slo: {exc}", file=sys.stderr)
        return 2
    if args.out:
        Path(args.out).write_text(report.to_json())
    if args.format == "json":
        print(report.to_json(), end="")
    else:
        print(report.render())
    return 1 if report.violated else 0


def cmd_faults(args) -> int:
    import json

    from repro.faults import FaultLedger, FaultPlan

    try:
        if args.action == "template":
            text = FaultPlan.default_profile().to_json()
            if args.out:
                Path(args.out).write_text(text)
                print(f"wrote default chaos profile to {args.out}")
            else:
                print(text, end="")
            return 0
        if not args.path:
            print(f"repro faults: {args.action} needs a PATH", file=sys.stderr)
            return 2
        if args.action == "validate":
            plan = FaultPlan.load(args.path)
            state = "empty (injects nothing)" if plan.is_empty else "active"
            print(f"valid repro-faults/v1 plan {plan.name!r} ({state})")
            print(f"  crash_prob={plan.crash_prob:g}  "
                  f"cold_start_failure_prob={plan.cold_start_failure_prob:g}  "
                  f"invocation_timeout_s={plan.invocation_timeout_s}")
            print(f"  storage backends: "
                  f"{', '.join(sorted(plan.storage)) or '-'}  "
                  f"permanent losses: {len(plan.permanent_loss)}")
            print(f"  retry: max_attempts={plan.retry.max_attempts}  "
                  f"base_backoff_s={plan.retry.base_backoff_s:g}  "
                  f"factor={plan.retry.backoff_factor:g}")
            return 0
        # summarize: render a saved repro-faults-report/v1 document.
        payload = json.loads(Path(args.path).read_text())
        ledger = FaultLedger.from_payload(payload)
        if args.format == "json":
            print(
                ledger.to_json(
                    payload.get("plan") or None,
                    dict(payload.get("meta") or {}),
                ),
                end="",
            )
        else:
            print(ledger.render())
        return 0
    except (OSError, ValueError, ReproError) as exc:
        print(f"repro faults: {exc}", file=sys.stderr)
        return 2


def cmd_runs(args) -> int:
    """``repro runs``: the local run registry and cross-run observatory."""
    from repro.runs import (
        RunStore,
        compare_runs,
        compare_to_json,
        has_regression,
        manifest_to_json,
        render_compare,
        render_manifest,
    )

    store = RunStore(args.store)
    try:
        if args.action == "list":
            manifests = store.list()
            if args.format == "ids":
                for manifest in manifests:
                    print(manifest["run_id"])
                return 0
            if args.format == "json":
                import json

                print(
                    json.dumps(manifests, indent=2, sort_keys=True)
                )
                return 0
            if not manifests:
                print(f"no runs in {store.root}")
                return 0
            print(
                f"{'run id':>13s}  {'command':10s} {'workload':18s} "
                f"{'method':12s} {'seed':>4s} {'arts':>4s} "
                f"{'jct_s':>10s} {'cost_usd':>10s}"
            )
            for manifest in manifests:
                meta = manifest["meta"]
                summary = manifest.get("summary") or {}
                jct = summary.get("jct_s")
                cost = summary.get("cost_usd")
                print(
                    f"{manifest['run_id']:>13s}  "
                    f"{(meta.get('command') or '-'):10s} "
                    f"{(meta.get('workload') or '-'):18s} "
                    f"{(meta.get('method') or '-'):12s} "
                    f"{meta.get('seed', 0):>4d} "
                    f"{len(manifest['artifacts']):>4d} "
                    + (f"{jct:>10.3f} " if jct is not None else f"{'-':>10s} ")
                    + (f"{cost:>10.4f}" if cost is not None else f"{'-':>10s}")
                )
            return 0
        if args.action == "show":
            if len(args.refs) != 1:
                raise ValueError("show needs exactly one RUN id (or prefix)")
            manifest = store.load(args.refs[0])
            if args.format == "json":
                print(manifest_to_json(manifest), end="")
            else:
                print(render_manifest(manifest))
            return 0
        if args.action == "compare":
            if len(args.refs) != 2:
                raise ValueError("compare needs BASE and TARGET run ids")
            report = compare_runs(
                store, args.refs[0], args.refs[1], threshold=args.threshold
            )
            if args.out:
                Path(args.out).write_text(compare_to_json(report))
            if args.format == "json":
                print(compare_to_json(report), end="")
            else:
                print(render_compare(report))
            return 1 if has_regression(report) else 0
        if args.action == "export":
            if len(args.refs) != 2:
                raise ValueError("export needs RUN and DEST arguments")
            written = store.export(args.refs[0], args.refs[1])
            print(f"exported {len(written)} file(s) to {args.refs[1]}")
            return 0
        # gc: optionally remove named runs first, then sweep orphans.
        for ref in args.refs:
            print(f"removed {store.remove(ref)}")
        stats = store.gc()
        print(
            f"gc: {stats['n_removed']} object(s) removed, "
            f"{stats['n_kept']} kept across {stats['n_runs']} run(s)"
        )
        return 0
    except (OSError, ValueError, ReproError) as exc:
        return _capture_error("runs", exc)


def cmd_experiment(args) -> int:
    result = run_experiment(args.experiment, scale=args.scale, seed=args.seed)
    print(result.render())
    return 0


def cmd_experiments(_args) -> int:
    for exp_id in REGISTRY.available():
        print(exp_id)
    return 0


def cmd_lint(args) -> int:
    # Imported lazily: the analysis package is pure stdlib but only the
    # lint subcommand needs it.
    from repro import analysis
    from repro.common.errors import AnalysisError

    catalogue = analysis.all_rules()
    if args.flow:
        catalogue = catalogue + analysis.flow_rules()
    by_id = {r.rule_id: r for r in catalogue}
    flow_ids = set(analysis.flow_rules_by_id())

    def pick(spec: str | None) -> set[str]:
        if not spec:
            return set()
        ids = {part.strip().upper() for part in spec.split(",") if part.strip()}
        unknown = sorted(ids - by_id.keys())
        if unknown:
            raise SystemExit(
                f"repro lint: unknown rule id(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(by_id))})"
            )
        return ids

    selected = pick(args.select) or set(by_id)
    selected -= pick(args.ignore)
    rules = [r for r in catalogue if r.rule_id in selected]

    if args.list_rules:
        print(analysis.render_rule_list(rules))
        return 0

    paths = args.paths or [str(Path(__file__).resolve().parent)]
    try:
        analyzer = analysis.Analyzer(
            [r for r in rules if r.rule_id not in flow_ids]
        )
        result = analyzer.analyze_paths(paths)
        if args.flow:
            flow_result = analysis.analyze_flow(paths, select=selected)
            # REP000 would double-report: the per-file walker already
            # surfaced any syntax errors on this same path list.
            result.findings.extend(
                f for f in flow_result.findings if f.rule != "REP000"
            )
            result.findings.sort(key=analysis.Finding.sort_key)
            result.suppressed += flow_result.suppressed

        if args.write_baseline:
            target = Path(args.baseline) if args.baseline else (
                Path.cwd() / analysis.DEFAULT_BASELINE_NAME
            )
            analysis.Baseline.from_findings(result.findings).save(target)
            print(
                f"wrote {len(result.findings)} finding(s) to baseline {target}"
            )
            return 0

        if args.no_baseline:
            baseline = analysis.Baseline.empty()
        else:
            found = analysis.find_baseline(
                Path(paths[0]), explicit=args.baseline
            )
            baseline = (
                analysis.Baseline.load(found)
                if found is not None
                else analysis.Baseline.empty()
            )
        new, baselined = baseline.apply(result.findings)
    except AnalysisError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(analysis.to_json(result, rules, new, baselined), end="")
    else:
        print(analysis.render_table(result, new, baselined))
    return 1 if new else 0


def _emit(text: str, out: str | None) -> None:
    if out:
        Path(out).write_text(text, encoding="utf-8")
        print(f"wrote {out}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")


def cmd_analyze(args) -> int:
    # Lazy import, same as cmd_lint: only this subcommand needs analysis.
    from repro import analysis
    from repro.common.errors import AnalysisError

    paths = args.paths or [str(Path(__file__).resolve().parent)]
    try:
        if args.target == "graph":
            index, errors, _, _ = analysis.build_index(paths)
            graph = analysis.build_callgraph(index)
            if args.format == "dot":
                _emit(analysis.callgraph_to_dot(graph), args.out)
            else:
                _emit(analysis.callgraph_to_json(graph), args.out)
            for finding in errors:
                print(
                    f"{finding.path}:{finding.line}: {finding.message}",
                    file=sys.stderr,
                )
            return 1 if errors else 0

        select = {
            "taint": {"REP009", "REP010", "REP011", "REP013"},
            "shard-safety": {"REP012"},
        }[args.target]
        result = analysis.analyze_flow(paths, select=select)
        if args.no_baseline:
            baseline = analysis.Baseline.empty()
        else:
            found = analysis.find_baseline(
                Path(paths[0]), explicit=args.baseline
            )
            baseline = (
                analysis.Baseline.load(found)
                if found is not None
                else analysis.Baseline.empty()
            )
        new, baselined = baseline.apply(result.findings)
    except AnalysisError as exc:
        print(f"repro analyze: {exc}", file=sys.stderr)
        return 2

    if args.target == "shard-safety":
        payload = analysis.sharding_payload(result.index, result.shard_reports)
        if args.format == "json":
            _emit(analysis.sharding_to_json(result.index, result.shard_reports),
                  args.out)
        else:
            summary = payload["summary"]
            print(f"shard-safety: {payload['verdict']}  "
                  f"({summary['n_globals']} globals audited, "  # type: ignore[index]
                  f"{summary['n_mutated_from_sim']} touched from sim paths)")  # type: ignore[index]
            by_kind = summary["by_kind"]  # type: ignore[index]
            for kind in sorted(by_kind):
                if by_kind[kind]:
                    print(f"  {kind:>14}: {by_kind[kind]}")
            for finding in new:
                print(f"  {finding.path}:{finding.line}: {finding.message}")
        return 1 if (new or payload["verdict"] != "ready") else 0

    lint_result = result.as_analysis_result()
    rules = [
        r for r in analysis.flow_rules() if r.rule_id in select | {"REP000"}
    ]
    if args.format == "json":
        print(analysis.to_json(lint_result, rules, new, baselined), end="")
    else:
        print(analysis.render_table(lint_result, new, baselined))
    return 1 if new else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CE-scaling reproduction (IPDPS 2023): profile, train, "
                    "tune, and regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads", help="show the Table IV workloads").set_defaults(
        fn=cmd_list_workloads
    )

    p = sub.add_parser(
        "profile",
        help="Pareto boundary, hot-path profiling runs, and profile diffs",
        description="Without flags, print WORKLOAD's Pareto boundary. With "
                    "--run MODE, execute that entry point under the "
                    "deterministic hot-path profiler and print the frame "
                    "table (write the repro-profile/v1 capture with --out). "
                    "--diff compares two saved captures (exit 1 when a "
                    "frame regressed past --threshold); --validate checks "
                    "a capture against the schema registry.",
    )
    p.add_argument("workload", nargs="?",
                   help="workload name (omit with --diff / --validate)")
    p.add_argument("--storage", choices=[s.value for s in StorageKind])
    p.add_argument("--run", choices=("train", "tune", "workflow"),
                   help="profile this entry point on WORKLOAD")
    p.add_argument("--out", metavar="PATH",
                   help="write the repro-profile/v1 capture (--run) or the "
                        "repro-profile-diff/v1 report (--diff) to PATH")
    p.add_argument("--flamegraph", metavar="PATH",
                   help="write a collapsed-stack flamegraph to PATH (--run)")
    p.add_argument("--memory", action="store_true",
                   help="also sample tracemalloc peak memory per frame")
    p.add_argument("--top", type=int, default=20,
                   help="frame-table rows to print (0 = all)")
    p.add_argument("--diff", nargs=2, metavar=("BASE", "TARGET"),
                   help="compare two saved repro-profile/v1 captures")
    p.add_argument("--validate", metavar="PATH",
                   help="validate a saved capture against the schema registry")
    p.add_argument("--threshold", type=float, default=1.2,
                   help="--diff: flag frames slower than BASE by this ratio")
    p.add_argument("--min-s", type=float, default=0.001,
                   help="--diff: ignore timing deltas on frames whose base "
                        "time is below this (timer noise)")
    p.add_argument("--format", default="table", choices=("table", "json"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--method", default="ce-scaling",
                   help="training/tuning method for --run")
    p.add_argument("--budget", type=float, help="absolute budget in USD")
    p.add_argument("--budget-multiple", type=float,
                   help="budget as a multiple of the cheapest spend "
                        "(default: train 2.5, tune 1.3)")
    p.add_argument("--trials", type=int, default=32)
    p.add_argument("--eta", type=int, default=2)
    p.add_argument("--epochs-per-stage", type=int, default=1)
    p.add_argument("--tuning-fraction", type=float, default=0.4)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("train", help="run one training job")
    p.add_argument("workload")
    p.add_argument("--method", default="ce-scaling", choices=TRAINING_METHODS)
    p.add_argument("--budget", type=float, help="absolute budget in USD")
    p.add_argument("--budget-multiple", type=float, default=2.5,
                   help="budget as multiple of the cheapest possible spend")
    p.add_argument("--qos-multiple", type=float,
                   help="switch to cost-min with this deadline multiple")
    p.add_argument("--storage", choices=[s.value for s in StorageKind])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--journal", metavar="PATH",
        help="write the crash-consistent repro-journal/v1 write-ahead log "
             "to PATH; an interrupted run continues with `repro resume`",
    )
    _add_telemetry_flags(p)
    _add_slo_flags(p)
    _add_fault_flags(p)
    _add_profile_flags(p)
    _add_timeseries_flags(p)
    _add_run_flags(p)
    p.set_defaults(fn=cmd_train)

    p = sub.add_parser(
        "resume",
        help="continue an interrupted journaled run",
        description="Reopen a repro-journal/v1 write-ahead log written by "
                    "`repro train --journal`, truncate any torn tail the "
                    "crash left, replay to the last consistent epoch "
                    "boundary, and continue the run to the same run id and "
                    "deterministic-artifact bytes as an uninterrupted run.",
    )
    p.add_argument("journal", help="path to the repro-journal/v1 file")
    p.add_argument("--force", action="store_true",
                   help="re-execute even if the journal is already committed")
    p.set_defaults(fn=cmd_resume)

    p = sub.add_parser("tune", help="run one hyperparameter-tuning job")
    p.add_argument("workload")
    p.add_argument("--method", default="ce-scaling", choices=TUNING_METHODS)
    p.add_argument("--trials", type=int, default=256)
    p.add_argument("--eta", type=int, default=2)
    p.add_argument("--epochs-per-stage", type=int, default=2)
    p.add_argument("--budget-multiple", type=float, default=1.3)
    p.add_argument("--seed", type=int, default=0)
    _add_telemetry_flags(p)
    _add_slo_flags(p)
    _add_fault_flags(p)
    _add_profile_flags(p)
    _add_timeseries_flags(p)
    _add_run_flags(p)
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser("workflow", help="run the full tune-then-train pipeline")
    p.add_argument("workload")
    p.add_argument("--budget", type=float, default=25.0)
    p.add_argument("--tuning-fraction", type=float, default=0.4)
    p.add_argument("--trials", type=int, default=32)
    p.add_argument("--eta", type=int, default=2)
    p.add_argument("--epochs-per-stage", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    _add_telemetry_flags(p)
    _add_slo_flags(p)
    _add_fault_flags(p)
    _add_profile_flags(p)
    _add_timeseries_flags(p)
    _add_run_flags(p)
    p.set_defaults(fn=cmd_workflow)

    p = sub.add_parser(
        "report", help="print the breakdown report for a saved telemetry file"
    )
    p.add_argument("path", help="JSON file written by --telemetry")
    p.add_argument("--format", default="table",
                   choices=("table", "json", "prometheus"),
                   help="breakdown tables, versioned JSON, or Prometheus "
                        "text exposition")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "diagnose",
        help="critical path, stragglers, model drift, and regret for a run",
        description="Diagnose a run: TARGET is either a workload name (the "
                    "job runs here, then gets diagnosed) or a telemetry JSON "
                    "file saved with --telemetry (pair with --trace for the "
                    "epoch timeline).",
    )
    p.add_argument("target", metavar="TARGET",
                   help="workload name, or path to a saved telemetry JSON")
    p.add_argument("--trace", metavar="PATH",
                   help="Chrome trace saved alongside the telemetry capture")
    p.add_argument("--method", default="ce-scaling", choices=TRAINING_METHODS)
    p.add_argument("--budget", type=float, help="absolute budget in USD")
    p.add_argument("--budget-multiple", type=float, default=2.5)
    p.add_argument("--qos-multiple", type=float,
                   help="switch to cost-min with this deadline multiple")
    p.add_argument("--storage", choices=[s.value for s in StorageKind])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--straggler", action="append", default=[],
                   metavar="RANK:FACTOR",
                   help="inject a compute slowdown on one worker rank "
                        "(repeatable; live mode only)")
    p.add_argument("--format", default="table", choices=("table", "json"))
    p.add_argument("--out", metavar="PATH",
                   help="also write the JSON document to PATH")
    p.add_argument("--top-k", type=int, default=5,
                   help="bottleneck spans to report")
    p.add_argument("--z", type=float, default=4.0,
                   help="straggler threshold in robust sigmas")
    p.add_argument("--drift-threshold", type=float, default=0.15,
                   help="relative residual band for the model-drift audit")
    p.add_argument("--slo", metavar="SPEC",
                   help="attribute error-budget consumption against this "
                        "repro-slo/v1 spec file")
    p.add_argument("--faults", metavar="PLAN",
                   help="live mode: inject faults from this repro-faults/v1 "
                        "plan and diagnose the recovery behaviour")
    p.add_argument("--fault-report", metavar="PATH",
                   help="capture mode: attribute faults from this saved "
                        "repro-faults-report/v1 document")
    p.add_argument("--timeseries", metavar="PATH",
                   help="feed resource time-series to the anomaly detector: "
                        "a saved repro-timeseries/v1 capture (capture mode) "
                        "or the path to sample this run into (live mode)")
    p.set_defaults(fn=cmd_diagnose)

    p = sub.add_parser(
        "dash",
        help="terminal dashboard of a run's resource time-series",
        description="Render sparkline time-series (in-flight invocations, "
                    "warm pool, storage bandwidth, allocation, cost, ...) "
                    "plus event markers. Either replay a saved "
                    "repro-timeseries/v1 capture (--replay) or run a "
                    "training job here under the live sampler (optionally "
                    "writing the capture with --out).",
    )
    p.add_argument("workload", nargs="?",
                   help="workload name for a live sampled run "
                        "(omit with --replay)")
    p.add_argument("--replay", metavar="CAPTURE",
                   help="render a saved repro-timeseries/v1 capture")
    p.add_argument("--out", metavar="PATH",
                   help="live mode: also write the capture to PATH")
    p.add_argument("--width", type=int, default=60,
                   help="sparkline width in characters")
    p.add_argument("--method", default="ce-scaling", choices=TRAINING_METHODS)
    p.add_argument("--budget", type=float, help="absolute budget in USD")
    p.add_argument("--budget-multiple", type=float, default=2.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--faults", metavar="PLAN",
                   help="live mode: inject faults from this repro-faults/v1 "
                        "plan so their signatures show on the dashboard")
    p.set_defaults(fn=cmd_dash)

    p = sub.add_parser(
        "timeseries",
        help="validate and diff repro-timeseries/v1 captures",
        description="Work with saved time-series captures: `validate PATH` "
                    "checks the schema contract (exit 2 on a bad capture); "
                    "`diff BASE TARGET` classifies per-series drift "
                    "(identical / level_shift / peak_shift / resampled / "
                    "jitter / divergent) and exits 1 when any series "
                    "drifted past --threshold.",
    )
    p.add_argument("action", choices=("diff", "validate"))
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="one capture (validate) or BASE TARGET (diff)")
    p.add_argument("--threshold", type=float, default=0.05,
                   help="diff: relative drift tolerance on mean/peak/last")
    p.add_argument("--format", default="table", choices=("table", "json"))
    p.add_argument("--out", metavar="PATH",
                   help="diff: also write the JSON report to PATH")
    p.set_defaults(fn=cmd_timeseries)

    p = sub.add_parser(
        "slo",
        help="evaluate an SLO spec against a live run or a saved capture",
        description="Judge a repro-slo/v1 spec: either replay a saved "
                    "capture (--capture pointing at an events.jsonl, a "
                    "telemetry JSON, or a directory holding one) or run a "
                    "training job here under the live guard. Exits 0 when "
                    "every objective is met, 1 on violation, 2 on errors.",
    )
    p.add_argument("workload", nargs="?",
                   help="workload name for a live guarded run "
                        "(omit with --capture)")
    p.add_argument("--spec", required=True, metavar="PATH",
                   help="repro-slo/v1 spec file")
    p.add_argument("--capture", metavar="PATH",
                   help="saved events.jsonl / telemetry JSON / capture dir")
    p.add_argument("--method", default="ce-scaling", choices=TRAINING_METHODS)
    p.add_argument("--budget", type=float, help="absolute budget in USD")
    p.add_argument("--budget-multiple", type=float, default=2.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--events", metavar="PATH",
                   help="write the live run's event log to PATH")
    p.add_argument("--format", default="table", choices=("table", "json"))
    p.add_argument("--out", metavar="PATH",
                   help="also write the JSON report to PATH")
    p.set_defaults(fn=cmd_slo)

    p = sub.add_parser(
        "faults",
        help="validate fault plans and summarize fault/recovery ledgers",
        description="Work with repro-faults/v1 plans and repro-faults-"
                    "report/v1 ledgers: validate a plan file, summarize a "
                    "saved fault report as a table or JSON, or emit the "
                    "default chaos profile as a starting template.",
    )
    p.add_argument("action", choices=("validate", "summarize", "template"))
    p.add_argument("path", nargs="?",
                   help="plan file (validate) or fault report (summarize)")
    p.add_argument("--format", default="table", choices=("table", "json"))
    p.add_argument("--out", metavar="PATH",
                   help="write the template to PATH instead of stdout")
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "runs",
        help="list, inspect, compare, export and gc saved run bundles",
        description="The content-addressed run registry written by "
                    "--save-run: `list` the stored bundles, `show RUN` one "
                    "manifest, `compare BASE TARGET` two runs (composing "
                    "summary, SLO, fault, timeseries and profile deltas "
                    "into a repro-compare/v1 verdict; exit 1 on "
                    "regression), `export RUN DEST` a bundle's artifacts, "
                    "or `gc [RUN...]` to drop runs and sweep orphaned "
                    "objects. Run ids may be unique prefixes.",
    )
    p.add_argument("action",
                   choices=("list", "show", "compare", "gc", "export"))
    p.add_argument("refs", nargs="*", metavar="RUN",
                   help="run ids/prefixes (show: RUN; compare: BASE TARGET; "
                        "export: RUN DEST; gc: runs to remove first)")
    p.add_argument("--store", default=DEFAULT_STORE_ROOT, metavar="DIR",
                   help=f"run-store root (default {DEFAULT_STORE_ROOT})")
    p.add_argument("--threshold", type=float, default=0.01,
                   help="compare: relative tolerance on summary metrics")
    p.add_argument("--format", default="table",
                   choices=("table", "json", "ids"),
                   help="ids applies to `list` (one run id per line)")
    p.add_argument("--out", metavar="PATH",
                   help="compare: also write the JSON report to PATH")
    p.set_defaults(fn=cmd_runs)

    p = sub.add_parser("experiment", help="regenerate one paper figure/table")
    p.add_argument("experiment")
    p.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_experiment)

    sub.add_parser("experiments", help="list experiment ids").set_defaults(
        fn=cmd_experiments
    )

    p = sub.add_parser(
        "lint",
        help="static determinism & simulation-safety checks (REP001-REP008, "
             "plus REP009-REP013 with --flow)",
        description="AST-based lint for the repository's reproducibility "
                    "invariants: seeded randomness only, no wall-clock in "
                    "simulated packages, event-loop safety, unit-suffix "
                    "consistency, exception hygiene, schema discipline, "
                    "deterministic iteration order, and bounded retries. "
                    "--flow adds the interprocedural passes: clock-domain "
                    "taint, RNG stream hygiene, shard safety, and schema "
                    "producer cross-checks.",
    )
    p.add_argument("paths", nargs="*",
                   help="files or directories to analyze "
                        "(default: the installed repro package)")
    p.add_argument("--select", metavar="IDS",
                   help="comma-separated rule ids to run (default: all)")
    p.add_argument("--ignore", metavar="IDS",
                   help="comma-separated rule ids to skip")
    p.add_argument("--format", default="table", choices=("table", "json"),
                   help="human-readable table or repro-lint/v1 JSON")
    p.add_argument("--baseline", metavar="PATH",
                   help="baseline file (default: nearest lint-baseline.json "
                        "above the first path)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline; report every finding as new")
    p.add_argument("--write-baseline", action="store_true",
                   help="accept all current findings into the baseline file "
                        "and exit 0")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.add_argument("--flow", action="store_true",
                   help="also run the interprocedural flow rules "
                        "(REP009-REP013)")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "analyze",
        help="whole-program flow analysis: call graph, clock/RNG taint, "
             "shard-safety audit",
        description="Interprocedural analyses over the project call graph. "
                    "'graph' exports the deterministic repro-callgraph/v1 "
                    "document (or DOT); 'taint' runs the clock-domain and "
                    "RNG dataflow rules (REP009-REP011, REP013); "
                    "'shard-safety' classifies every module-level global "
                    "and emits the repro-sharding/v1 readiness report that "
                    "gates the sharded event-kernel refactor.",
    )
    p.add_argument("target", choices=("graph", "taint", "shard-safety"),
                   help="which analysis to run")
    p.add_argument("paths", nargs="*",
                   help="files or directories to analyze "
                        "(default: the installed repro package)")
    p.add_argument("--format", default="table",
                   choices=("table", "json", "dot"),
                   help="output format (dot applies to 'graph' only; "
                        "'graph' table output falls back to JSON)")
    p.add_argument("--out", metavar="PATH",
                   help="write the document to PATH instead of stdout")
    p.add_argument("--baseline", metavar="PATH",
                   help="baseline file (default: nearest lint-baseline.json "
                        "above the first path)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline; report every finding as new")
    p.set_defaults(fn=cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    args = build_parser().parse_args(argv)
    # Provenance stamping records the exact invocation (informational
    # only: argv never feeds run-id derivation).
    args._argv = tuple(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        # close() can only fail with the OS re-raising the broken pipe
        # (OSError) or the stream already being closed (ValueError).
        try:
            sys.stdout.close()
        except (OSError, ValueError):
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
