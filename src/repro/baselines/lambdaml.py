"""LambdaML baseline [14]: static allocation from offline prediction.

For model training, LambdaML estimates the required epochs once with its
sampling-based pilot (paper §II-C2), selects one allocation for that
horizon, and never adjusts — when the pilot under- or over-estimates, the
job violates its budget or deadline (which is why the paper excludes
LambdaML from the training comparison: "the offline prediction always
results in violations in the constraints").

For hyperparameter tuning, LambdaML is the *static* method: the same
allocation for every SHA stage, optimally chosen for the constraint
(CE-scaling minus the greedy heuristic planner, exactly how the paper
realizes this baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analytical.pareto import ProfiledAllocation
from repro.tuning.plan import Objective, PartitionPlan
from repro.tuning.sha import SHASpec
from repro.tuning.static_planner import optimal_static_plan
from repro.ml.models import Workload
from repro.training.adaptive_scheduler import SchedulerDecision, select_best_allocation
from repro.training.offline_predictor import OfflinePredictor


def lambdaml_tuning_plan(
    candidates: list[ProfiledAllocation],
    spec: SHASpec,
    objective: Objective,
    budget_usd: float | None = None,
    qos_s: float | None = None,
) -> PartitionPlan:
    """LambdaML's tuning plan: the optimal static (uniform) plan."""
    return optimal_static_plan(
        candidates, spec, objective, budget_usd=budget_usd, qos_s=qos_s
    )


@dataclass
class LambdaMLScheduler:
    """Static training scheduler driven by one offline prediction."""

    workload: Workload
    candidates: list[ProfiledAllocation]
    objective: Objective
    budget_usd: float | None = None
    qos_s: float | None = None
    per_candidate_eval_s: float = 0.02
    seed: int = 0
    offline: OfflinePredictor | None = None

    def __post_init__(self) -> None:
        if self.offline is None:
            self.offline = OfflinePredictor(self.workload, seed=self.seed)
        self.predicted_total_epochs = 0.0
        self.current: ProfiledAllocation | None = None
        self.n_searches = 0
        self.total_search_overhead_s = 0.0

    def initial_decision(self) -> SchedulerDecision:
        self.predicted_total_epochs = max(1.0, self.offline.predict_total_epochs())
        self.n_searches += 1
        overhead = self.per_candidate_eval_s * len(self.candidates)
        self.total_search_overhead_s += overhead
        self.current = select_best_allocation(
            self.candidates,
            self.objective,
            self.predicted_total_epochs,
            budget_usd=self.budget_usd,
            qos_s=self.qos_s,
        )
        return SchedulerDecision(
            point=self.current,
            restart=False,
            predicted_total_epochs=self.predicted_total_epochs,
            search_overhead_s=overhead,
        )

    def on_epoch_end(
        self, loss: float, epoch_cost_usd: float, epoch_time_s: float
    ) -> SchedulerDecision:
        """Static: the initial decision is never revisited."""
        return SchedulerDecision(
            point=self.current,
            restart=False,
            predicted_total_epochs=self.predicted_total_epochs,
            search_overhead_s=0.0,
        )
