"""Siren baseline [9]: RL-driven allocation over S3, adjusted every epoch.

The real Siren trains a deep-RL policy to pick the number and memory of
functions; it uses S3 as its only external storage and re-decides every
epoch. We substitute the deep network with a cross-entropy-method (CEM)
policy trained on the same analytical environment the schedulers see — the
behaviour class the paper's findings rely on is preserved:

* the policy's action space is the S3-only allocation ladder;
* it re-decides (and pays scheduling + restart overhead) every epoch;
* the learned distribution keeps residual exploration noise, so Siren
  occasionally switches allocations mid-training for no reason — the
  "considerable overhead" of §IV-C;
* for tuning, Siren's reward favours early-stage progress, so it
  over-allocates the early (soon-to-be-halved) stages — the paper's
  explanation for why LambdaML beats Siren in Fig. 9/10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConstraintError
from repro.common.rng import stream_for
from repro.common.types import StorageKind
from repro.analytical.pareto import ProfiledAllocation
from repro.tuning.plan import Objective, PartitionPlan, evaluate_plan
from repro.tuning.sha import SHASpec
from repro.ml.models import Workload
from repro.training.adaptive_scheduler import SchedulerDecision


def s3_only(candidates: list[ProfiledAllocation]) -> list[ProfiledAllocation]:
    """Restrict a candidate set to S3-backed allocations (Siren's world)."""
    out = [p for p in candidates if p.allocation.storage is StorageKind.S3]
    if not out:
        raise ConstraintError("no S3-backed allocations in the candidate set")
    return out


@dataclass
class SirenPolicy:
    """A CEM-trained softmax policy over the S3 allocation ladder.

    Training episodes score each action by the (negative) objective of
    running the whole job with it, with a quadratic penalty for violating
    the constraint; elites re-weight the sampling distribution. The final
    distribution concentrates near the best static choice but keeps
    ``exploration`` probability mass spread out — the RL policy's residual
    stochasticity.
    """

    candidates: list[ProfiledAllocation]
    objective: Objective
    budget_usd: float | None = None
    qos_s: float | None = None
    horizon_epochs: float = 50.0
    n_iterations: int = 12
    population: int = 64
    elite_frac: float = 0.2
    exploration: float = 0.08
    seed: int = 0

    def __post_init__(self) -> None:
        self.candidates = s3_only(self.candidates)
        self._rng = stream_for(self.seed, "siren-policy")
        self.probs = np.full(len(self.candidates), 1.0 / len(self.candidates))
        self.trained = False

    def _score(self, idx: int) -> float:
        p = self.candidates[idx]
        jct = self.horizon_epochs * p.time_s
        cost = self.horizon_epochs * p.cost_usd
        if self.objective is Objective.MIN_JCT_GIVEN_BUDGET:
            value = -jct
            if self.budget_usd is not None and cost > self.budget_usd:
                value -= 10.0 * jct * (cost / self.budget_usd)
        else:
            value = -cost
            if self.qos_s is not None and jct > self.qos_s:
                value -= 10.0 * cost * (jct / self.qos_s)
        return value

    def train(self) -> None:
        """Cross-entropy iterations over the categorical action space."""
        n_elite = max(1, int(self.population * self.elite_frac))
        for _ in range(self.n_iterations):
            actions = self._rng.choice(
                len(self.candidates), size=self.population, p=self.probs
            )
            scores = np.array([self._score(a) for a in actions])
            elite_actions = actions[np.argsort(scores)[-n_elite:]]
            counts = np.bincount(elite_actions, minlength=len(self.candidates))
            new_probs = counts / counts.sum()
            self.probs = 0.6 * new_probs + 0.4 * self.probs
        # Residual exploration: the deep policy never fully collapses.
        uniform = np.full_like(self.probs, 1.0 / len(self.probs))
        self.probs = (1 - self.exploration) * self.probs + self.exploration * uniform
        self.trained = True

    def sample(self) -> ProfiledAllocation:
        if not self.trained:
            self.train()
        idx = int(self._rng.choice(len(self.candidates), p=self.probs))
        return self.candidates[idx]


@dataclass
class SirenScheduler:
    """Training scheduler: per-epoch RL decisions over S3 allocations."""

    workload: Workload
    candidates: list[ProfiledAllocation]
    objective: Objective
    budget_usd: float | None = None
    qos_s: float | None = None
    per_candidate_eval_s: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        self.policy = SirenPolicy(
            candidates=self.candidates,
            objective=self.objective,
            budget_usd=self.budget_usd,
            qos_s=self.qos_s,
            horizon_epochs=max(1.0, self.workload.nominal_epochs),
            seed=self.seed,
        )
        self.policy.train()
        self.current: ProfiledAllocation | None = None
        self.predicted_total_epochs = float(self.workload.nominal_epochs)
        self.n_searches = 0
        self.total_search_overhead_s = 0.0

    def _overhead(self) -> float:
        self.n_searches += 1
        overhead = self.per_candidate_eval_s * len(self.policy.candidates)
        self.total_search_overhead_s += overhead
        return overhead

    def initial_decision(self) -> SchedulerDecision:
        self.current = self.policy.sample()
        return SchedulerDecision(
            point=self.current,
            restart=False,
            predicted_total_epochs=self.predicted_total_epochs,
            search_overhead_s=self._overhead(),
        )

    def on_epoch_end(
        self, loss: float, epoch_cost_usd: float, epoch_time_s: float
    ) -> SchedulerDecision:
        """Siren re-decides every epoch — restart churn included."""
        new_point = self.policy.sample()
        restart = new_point.allocation != self.current.allocation
        self.current = new_point
        return SchedulerDecision(
            point=new_point,
            restart=restart,
            predicted_total_epochs=self.predicted_total_epochs,
            search_overhead_s=self._overhead(),
        )


def siren_tuning_plan(
    candidates: list[ProfiledAllocation],
    spec: SHASpec,
    objective: Objective,
    budget_usd: float | None = None,
    qos_s: float | None = None,
) -> PartitionPlan:
    """Siren's tuning plan: front-loaded allocation over S3.

    The RL reward observes early-stage throughput, so the policy gives the
    early stages the fastest allocations the budget allows and leaves the
    tail stages whatever remains — wasting budget on trials that SHA will
    terminate (the paper's §IV-B explanation of Siren's deficit).
    """
    ladder = sorted(s3_only(candidates), key=lambda p: p.cost_usd)
    cheapest, fastest = ladder[0], ladder[-1]
    stages: list[ProfiledAllocation] = [cheapest] * spec.n_stages
    plan = PartitionPlan(tuple(stages))
    if objective is Objective.MIN_JCT_GIVEN_BUDGET and budget_usd is not None:
        # Upgrade stages front-to-back while the budget holds.
        for i in range(spec.n_stages):
            for point in reversed(ladder):  # fastest first
                cand = plan.replace_stage(i, point)
                if evaluate_plan(cand, spec).cost_usd <= budget_usd:
                    plan = cand
                    break
        return plan
    # Cost-min: speed up front stages until the deadline is met.
    qos = qos_s if qos_s is not None else float("inf")
    for i in range(spec.n_stages):
        if evaluate_plan(plan, spec).jct_s <= qos:
            break
        plan = plan.replace_stage(i, fastest)
    return plan
