"""Baseline schedulers: LambdaML, Siren, Cirrus, and the Fixed split."""

from repro.baselines.cirrus import CirrusScheduler, cirrus_tuning_plan
from repro.baselines.fixed import fixed_tuning_plan
from repro.baselines.lambdaml import LambdaMLScheduler, lambdaml_tuning_plan
from repro.baselines.siren import SirenPolicy, SirenScheduler, siren_tuning_plan

__all__ = [
    "CirrusScheduler",
    "LambdaMLScheduler",
    "SirenPolicy",
    "SirenScheduler",
    "cirrus_tuning_plan",
    "fixed_tuning_plan",
    "lambdaml_tuning_plan",
    "siren_tuning_plan",
]
