"""Cirrus baseline [4]: VM-PS storage, static allocation.

Cirrus uses an EC2 parameter server as its intermediate storage and does not
adapt resources at runtime. The paper additionally evaluates a *modified*
Cirrus that is given the same online prediction as CE-scaling (§IV-C) — it
then adjusts resources, but stays pinned to VM-PS and pays the full restart
cost because it lacks delayed restart (the executor models that by keeping
``DelayedRestartPlanner.enabled = False`` for this scheduler; see
``repro.workflow.runner``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConstraintError
from repro.common.types import StorageKind
from repro.analytical.pareto import ProfiledAllocation
from repro.tuning.plan import Objective, PartitionPlan
from repro.tuning.sha import SHASpec
from repro.tuning.static_planner import optimal_static_plan
from repro.ml.models import Workload
from repro.training.adaptive_scheduler import AdaptiveScheduler, SchedulerDecision
from repro.baselines.lambdaml import LambdaMLScheduler


def vmps_only(candidates: list[ProfiledAllocation]) -> list[ProfiledAllocation]:
    """Restrict a candidate set to VM-PS-backed allocations (Cirrus's world)."""
    out = [p for p in candidates if p.allocation.storage is StorageKind.VMPS]
    if not out:
        raise ConstraintError("no VM-PS-backed allocations in the candidate set")
    return out


def cirrus_tuning_plan(
    candidates: list[ProfiledAllocation],
    spec: SHASpec,
    objective: Objective,
    budget_usd: float | None = None,
    qos_s: float | None = None,
) -> PartitionPlan:
    """Cirrus's tuning plan: optimal static plan over VM-PS allocations."""
    return optimal_static_plan(
        vmps_only(candidates), spec, objective, budget_usd=budget_usd, qos_s=qos_s
    )


@dataclass
class CirrusScheduler:
    """Training scheduler pinned to VM-PS.

    ``modified=False``: static (offline prediction once, like LambdaML but
    VM-PS-only). ``modified=True``: the paper's modified Cirrus — CE-scaling's
    online-prediction adaptive loop, restricted to VM-PS allocations.
    """

    workload: Workload
    candidates: list[ProfiledAllocation]
    objective: Objective
    budget_usd: float | None = None
    qos_s: float | None = None
    modified: bool = True
    delta: float = 0.1
    per_candidate_eval_s: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        pinned = vmps_only(self.candidates)
        if self.modified:
            self._inner = AdaptiveScheduler(
                workload=self.workload,
                candidates=pinned,
                objective=self.objective,
                budget_usd=self.budget_usd,
                qos_s=self.qos_s,
                delta=self.delta,
                per_candidate_eval_s=self.per_candidate_eval_s,
                seed=self.seed,
            )
        else:
            self._inner = LambdaMLScheduler(
                workload=self.workload,
                candidates=pinned,
                objective=self.objective,
                budget_usd=self.budget_usd,
                qos_s=self.qos_s,
                per_candidate_eval_s=self.per_candidate_eval_s,
                seed=self.seed,
            )

    @property
    def n_searches(self) -> int:
        return self._inner.n_searches

    @property
    def total_search_overhead_s(self) -> float:
        return self._inner.total_search_overhead_s

    def initial_decision(self) -> SchedulerDecision:
        return self._inner.initial_decision()

    def on_epoch_end(
        self, loss: float, epoch_cost_usd: float, epoch_time_s: float
    ) -> SchedulerDecision:
        return self._inner.on_epoch_end(loss, epoch_cost_usd, epoch_time_s)
