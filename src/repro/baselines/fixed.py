"""The cluster-style "Fixed" baseline (paper §IV-B).

Divides resources equally among stages and across trials within each stage,
as a fixed-size cluster scheduler would. Early stages — with exponentially
more trials — get starved into the cheapest allocations (severe resource
competition) while late stages burn the leftover budget on communication
overhead; the paper shows this is the worst of all methods (Fig. 9-11).
"""

from __future__ import annotations

from repro.analytical.pareto import ProfiledAllocation
from repro.tuning.plan import PartitionPlan
from repro.tuning.sha import SHASpec
from repro.tuning.static_planner import even_budget_plan


def fixed_tuning_plan(
    candidates: list[ProfiledAllocation],
    spec: SHASpec,
    budget_usd: float,
) -> PartitionPlan:
    """The even-split plan (delegates to the static planner's helper)."""
    return even_budget_plan(candidates, spec, budget_usd)
