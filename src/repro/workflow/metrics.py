"""Reporting helpers shared by the experiment harness and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.common.errors import ValidationError


def normalize(values: Mapping[str, float], base: str) -> dict[str, float]:
    """Each value divided by ``values[base]`` (the paper's normalization)."""
    if base not in values:
        raise ValidationError(f"base {base!r} not in {sorted(values)}")
    denom = values[base]
    if denom == 0:
        raise ValidationError(f"base {base!r} value is zero; cannot normalize")
    return {k: v / denom for k, v in values.items()}


def improvement_pct(baseline: float, ours: float) -> float:
    """Relative reduction of ``ours`` vs ``baseline`` in percent."""
    if baseline <= 0:
        raise ValidationError(f"baseline must be positive, got {baseline}")
    return (1.0 - ours / baseline) * 100.0


@dataclass
class ComparisonTable:
    """A tiny column-oriented table with aligned text rendering.

    Used by every experiment module to print the rows/series the paper's
    figures show, without pulling in a plotting stack.
    """

    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)
    title: str = ""

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValidationError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        def fmt(v: object) -> str:
            if isinstance(v, float):
                if v == 0:
                    return "0"
                if abs(v) >= 1000:
                    return f"{v:,.0f}"
                if abs(v) >= 10:
                    return f"{v:.1f}"
                return f"{v:.3f}"
            return str(v)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells else len(c)
            for i, c in enumerate(self.columns)
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        return "\n".join(lines)

    def as_dicts(self) -> list[dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]
