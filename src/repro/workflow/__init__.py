"""End-to-end job runner: one call per training/tuning job per method."""

from repro.workflow.job import (
    TABLE_IV,
    TrainingConstraints,
    TuningConstraints,
    training_envelope,
    tuning_envelope,
)
from repro.workflow.campaign import WorkflowResult, run_workflow
from repro.workflow.runner import (
    TRAINING_METHODS,
    TUNING_METHODS,
    run_training,
    run_tuning,
)

__all__ = [
    "TABLE_IV",
    "TRAINING_METHODS",
    "TUNING_METHODS",
    "TrainingConstraints",
    "TuningConstraints",
    "WorkflowResult",
    "run_training",
    "run_tuning",
    "run_workflow",
    "training_envelope",
    "tuning_envelope",
]
