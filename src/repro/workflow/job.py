"""Job specifications and constraint envelopes.

``TABLE_IV`` mirrors the paper's experimental-configuration table. The
envelope helpers derive realistic budget/QoS constraints from a workload's
Pareto profile: the paper states constraints as multiples of what the
cheapest/fastest plans need, so experiments here do the same instead of
hard-coding dollar values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytical.profiler import ProfileResult
from repro.ml.models import WORKLOADS, Workload
from repro.tuning.plan import PartitionPlan, evaluate_plan
from repro.tuning.sha import SHASpec

# The paper's Table IV, by workload key (model, dataset, batch, lr, target).
TABLE_IV: dict[str, dict] = {
    name: {
        "model": w.profile.family.value,
        "dataset": w.dataset.name,
        "batch_size": w.batch_size,
        "learning_rate": w.learning_rate,
        "target_loss": w.target_loss,
    }
    for name, w in WORKLOADS.items()
}


@dataclass(frozen=True, slots=True)
class TrainingConstraints:
    """Reference envelope for one training workload.

    Attributes:
        min_cost_usd: nominal epochs at the cheapest Pareto point.
        min_jct_s: nominal epochs at the fastest Pareto point.
        max_cost_usd: nominal epochs at the most expensive Pareto point.
        max_jct_s: nominal epochs at the slowest Pareto point.
    """

    min_cost_usd: float
    min_jct_s: float
    max_cost_usd: float
    max_jct_s: float

    def budget(self, multiple: float = 1.5) -> float:
        """A budget as a multiple of the cheapest possible spend."""
        return self.min_cost_usd * multiple

    def qos(self, multiple: float = 1.5) -> float:
        """A deadline as a multiple of the fastest possible JCT."""
        return self.min_jct_s * multiple


def training_envelope(
    workload: Workload, profile: ProfileResult
) -> TrainingConstraints:
    """Derive the training constraint envelope from a Pareto profile."""
    e = workload.nominal_epochs
    return TrainingConstraints(
        min_cost_usd=e * profile.cheapest().cost_usd,
        min_jct_s=e * profile.fastest().time_s,
        max_cost_usd=e * max(p.cost_usd for p in profile.pareto),
        max_jct_s=e * max(p.time_s for p in profile.pareto),
    )


@dataclass(frozen=True, slots=True)
class TuningConstraints:
    """Reference envelope for one tuning workload under an SHA spec."""

    min_cost_usd: float
    min_jct_s: float

    def budget(self, multiple: float = 1.5) -> float:
        return self.min_cost_usd * multiple

    def qos(self, multiple: float = 1.5) -> float:
        return self.min_jct_s * multiple


def tuning_envelope(
    profile: ProfileResult, spec: SHASpec
) -> TuningConstraints:
    """Derive the tuning constraint envelope from a Pareto profile."""
    cheapest = evaluate_plan(
        PartitionPlan.uniform(profile.cheapest(), spec.n_stages), spec
    )
    fastest = evaluate_plan(
        PartitionPlan.uniform(profile.fastest(), spec.n_stages), spec
    )
    return TuningConstraints(
        min_cost_usd=cheapest.cost_usd,
        min_jct_s=fastest.jct_s,
    )
