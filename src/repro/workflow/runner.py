"""Unified entry points: run one training or tuning job under any method.

``run_training`` / ``run_tuning`` hide the wiring between profiler,
scheduler/planner, executor and ablation switches, so experiments and users
compare methods with one call per (workload, method, constraint):

>>> from repro.workflow import run_training
>>> from repro.tuning.plan import Objective
>>> result = run_training("lr-higgs", method="ce-scaling",
...                       objective=Objective.MIN_JCT_GIVEN_BUDGET,
...                       budget_usd=2.0, seed=0)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import PurePath

from repro.common.errors import ValidationError
from repro.common.types import JobResult, StorageKind
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.analytical.pareto import pareto_front
from repro.analytical.profiler import ParetoProfiler, ProfileResult
from repro.analytical.space import AllocationSpace, default_space
from repro.baselines.cirrus import CirrusScheduler, cirrus_tuning_plan
from repro.baselines.fixed import fixed_tuning_plan
from repro.baselines.lambdaml import LambdaMLScheduler, lambdaml_tuning_plan
from repro.baselines.siren import SirenScheduler, siren_tuning_plan
from repro.ml.models import Workload, workload as lookup_workload
from repro.training.adaptive_scheduler import AdaptiveScheduler
from repro.training.delayed_restart import DelayedRestartPlanner
from repro.training.executor import TrainingExecutor, TrainingJobSpec
from repro.tuning.executor import TuningExecutor, TuningRunResult
from repro.tuning.greedy_planner import GreedyHeuristicPlanner
from repro.tuning.plan import Objective, PartitionPlan
from repro.tuning.sha import SHASpec
from repro.timeseries import get_sampler

TRAINING_METHODS = ("ce-scaling", "siren", "cirrus", "cirrus-static", "lambdaml")
TUNING_METHODS = ("ce-scaling", "lambdaml", "siren", "cirrus", "fixed")


def _resolve_workload(w: Workload | str) -> Workload:
    return lookup_workload(w) if isinstance(w, str) else w


def _make_injector(fault_plan, seed: int, scope: str):
    """A FaultInjector for a non-empty plan, else None (exact no-op path)."""
    if fault_plan is None:
        return None
    from repro.faults import FaultInjector, FaultPlan

    if isinstance(fault_plan, (str, PurePath)):
        fault_plan = FaultPlan.load(fault_plan)
    if fault_plan.is_empty:
        return None
    return FaultInjector(fault_plan, seed=seed, scope=scope)


def profile_workload(
    w: Workload | str,
    platform: PlatformConfig = DEFAULT_PLATFORM,
    space: AllocationSpace | None = None,
    storage_pin: StorageKind | None = None,
    use_pareto: bool = True,
) -> ProfileResult:
    """Profile a workload's allocation space (optionally storage-pinned)."""
    w = _resolve_workload(w)
    space = space or default_space()
    if storage_pin is not None:
        space = space.restrict_storage(storage_pin)
    return ParetoProfiler(platform=platform, space=space, use_pareto=use_pareto).profile(w)


@dataclass
class TrainingRun:
    """A training job's result plus the context needed to interpret it."""

    method: str
    result: JobResult
    profile: ProfileResult
    scheduler: object
    # Constraint context, carried so downstream analysis (the diagnostics
    # engine's ex-post regret audit) can re-evaluate decisions without
    # re-deriving what the job was asked to optimize.
    workload: Workload | None = None
    objective: Objective | None = None
    budget_usd: float | None = None
    qos_s: float | None = None
    seed: int = 0
    # The fault/recovery ledger when the run had a fault plan, else None.
    fault_ledger: object | None = None


def make_training_scheduler(
    method: str,
    w: Workload,
    profile: ProfileResult,
    objective: Objective,
    budget_usd: float | None,
    qos_s: float | None,
    seed: int,
    delta: float = 0.1,
):
    """Instantiate the scheduler for a method (CE-scaling or a baseline).

    Storage-pinned baselines (Siren: S3, Cirrus: VM-PS) draw from the
    Pareto front *within their own storage's feasible points* — a pinned
    storage may be entirely dominated on the global boundary.
    """
    candidates = profile.candidates
    if method == "siren":
        candidates = pareto_front(
            [p for p in profile.all_points if p.allocation.storage is StorageKind.S3]
        ) or profile.all_points
    elif method in ("cirrus", "cirrus-static"):
        candidates = pareto_front(
            [p for p in profile.all_points if p.allocation.storage is StorageKind.VMPS]
        ) or profile.all_points
    common = dict(
        workload=w,
        candidates=candidates,
        objective=objective,
        budget_usd=budget_usd,
        qos_s=qos_s,
        seed=seed,
    )
    if method == "ce-scaling":
        return AdaptiveScheduler(delta=delta, **common)
    if method == "siren":
        return SirenScheduler(**common)
    if method == "cirrus":
        return CirrusScheduler(modified=True, delta=delta, **common)
    if method == "cirrus-static":
        return CirrusScheduler(modified=False, **common)
    if method == "lambdaml":
        return LambdaMLScheduler(**common)
    raise ValidationError(f"unknown training method {method!r}; use {TRAINING_METHODS}")


def run_training(
    w: Workload | str,
    method: str = "ce-scaling",
    objective: Objective = Objective.MIN_JCT_GIVEN_BUDGET,
    budget_usd: float | None = None,
    qos_s: float | None = None,
    seed: int = 0,
    platform: PlatformConfig = DEFAULT_PLATFORM,
    storage_pin: StorageKind | None = None,
    use_pareto: bool = True,
    delayed_restart: bool | None = None,
    delta: float = 0.1,
    max_epochs: int = 400,
    use_real_sgd: bool = False,
    profile: ProfileResult | None = None,
    straggler_factors: dict[int, float] | None = None,
    fault_plan: object | None = None,
    journal: object | None = None,
) -> TrainingRun:
    """Run one model-training job end to end.

    Ablation switches: ``use_pareto=False`` searches the full feasible space
    (WO-pa); ``delayed_restart=False`` puts restart costs on the critical
    path (WO-dr). By default delayed restart is enabled only for CE-scaling
    (baselines lack the mechanism).

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`, or a path to its
    JSON document) turns on fault injection plus the resilience layer; an
    empty plan — or None — keeps the run byte-identical to the pre-fault
    execution path.

    ``journal`` (a :class:`repro.kernel.RunJournal`) records every epoch
    boundary to the crash-consistent write-ahead log; in resume mode the
    journaled prefix is validated instead (``repro resume``).
    """
    w = _resolve_workload(w)
    injector = _make_injector(fault_plan, seed, "train")
    if profile is None:
        profile = profile_workload(
            w, platform=platform, storage_pin=storage_pin, use_pareto=use_pareto
        )
    scheduler = make_training_scheduler(
        method, w, profile, objective, budget_usd, qos_s, seed, delta=delta
    )
    if delayed_restart is None:
        delayed_restart = method == "ce-scaling"
    spec = TrainingJobSpec(
        workload=w,
        objective=objective,
        budget_usd=budget_usd,
        qos_s=qos_s,
        max_epochs=max_epochs,
        use_real_sgd=use_real_sgd,
        seed=seed,
    )
    executor = TrainingExecutor(
        spec=spec,
        scheduler=scheduler,
        platform_config=platform,
        restart_planner=DelayedRestartPlanner(platform=platform, enabled=delayed_restart),
        straggler_factors=dict(straggler_factors or {}),
        fault_injector=injector,
        journal=journal,
    )
    return TrainingRun(
        method=method, result=executor.run(), profile=profile, scheduler=scheduler,
        workload=w, objective=objective, budget_usd=budget_usd, qos_s=qos_s,
        seed=seed, fault_ledger=injector.ledger if injector else None,
    )


@dataclass
class TuningRun:
    """A tuning job's result plus its plan and planner statistics."""

    method: str
    result: TuningRunResult
    plan: PartitionPlan
    profile: ProfileResult
    planner_stats: object | None = None
    # The fault/recovery ledger when the run had a fault plan, else None.
    fault_ledger: object | None = None


def make_tuning_plan(
    method: str,
    profile: ProfileResult,
    spec: SHASpec,
    objective: Objective,
    budget_usd: float | None,
    qos_s: float | None,
    delta: float = 0.001,
    platform: PlatformConfig = DEFAULT_PLATFORM,
) -> tuple[PartitionPlan, object | None, float]:
    """Build the per-method plan; returns (plan, stats, planning_overhead_s).

    Planning overhead is the simulated scheduling cost added to JCT: the
    measured planner wall time for CE-scaling (search-proportional), and a
    single static-selection pass for the baselines.
    """
    candidates = profile.candidates
    if method == "ce-scaling":
        planner = GreedyHeuristicPlanner(delta=delta, platform=platform)
        res = planner.plan(
            candidates, spec, objective, budget_usd=budget_usd, qos_s=qos_s
        )
        # Simulated planning overhead: per-candidate estimation (profiling
        # a configuration on the platform) is what costs time in the real
        # system — hence Pareto pruning's ~69% overhead cut (Fig. 21a).
        overhead = 0.05 * len(candidates)
        return res.plan, res.stats, overhead
    if method == "lambdaml":
        plan = lambdaml_tuning_plan(
            candidates, spec, objective, budget_usd=budget_usd, qos_s=qos_s
        )
        return plan, None, 0.05 * len(candidates)
    if method == "siren":
        pinned = pareto_front(
            [p for p in profile.all_points if p.allocation.storage is StorageKind.S3]
        )
        plan = siren_tuning_plan(
            pinned or candidates, spec, objective, budget_usd=budget_usd, qos_s=qos_s
        )
        return plan, None, 0.05 * len(pinned or candidates)
    if method == "cirrus":
        pinned = pareto_front(
            [p for p in profile.all_points if p.allocation.storage is StorageKind.VMPS]
        )
        plan = cirrus_tuning_plan(
            pinned or candidates, spec, objective, budget_usd=budget_usd, qos_s=qos_s
        )
        return plan, None, 0.05 * len(pinned or candidates)
    if method == "fixed":
        if budget_usd is None:
            raise ValidationError("the fixed baseline needs budget_usd")
        plan = fixed_tuning_plan(candidates, spec, budget_usd)
        return plan, None, 0.05 * len(candidates)
    raise ValidationError(f"unknown tuning method {method!r}; use {TUNING_METHODS}")


def run_tuning(
    w: Workload | str,
    spec: SHASpec,
    method: str = "ce-scaling",
    objective: Objective = Objective.MIN_JCT_GIVEN_BUDGET,
    budget_usd: float | None = None,
    qos_s: float | None = None,
    seed: int = 0,
    platform: PlatformConfig = DEFAULT_PLATFORM,
    storage_pin: StorageKind | None = None,
    use_pareto: bool = True,
    delta: float = 0.001,
    profile: ProfileResult | None = None,
    fault_plan: object | None = None,
) -> TuningRun:
    """Run one hyperparameter-tuning job end to end.

    ``fault_plan`` behaves as in :func:`run_training` (stage-grained:
    storage transients and throttle windows stretch stage JCTs).
    """
    w = _resolve_workload(w)
    injector = _make_injector(fault_plan, seed, "tune")
    if profile is None:
        profile = profile_workload(
            w, platform=platform, storage_pin=storage_pin, use_pareto=use_pareto
        )
    plan, stats, overhead = make_tuning_plan(
        method, profile, spec, objective, budget_usd, qos_s, delta=delta,
        platform=platform,
    )
    ts = get_sampler()
    if ts.enabled and overhead > 0:
        # Planner throughput: candidate (allocation, partition) points
        # examined per second of scheduling overhead, stamped at the end
        # of the search (the job clock starts at `overhead`).
        evaluated = float(
            getattr(stats, "candidates_evaluated", 0)
            or len(profile.candidates)
        )
        ts.sample(
            "planner.candidate_throughput_per_s", overhead,
            evaluated / overhead,
        )
    executor = TuningExecutor(
        workload=w, spec=spec, platform=platform, seed=seed,
        fault_injector=injector,
    )
    result = executor.run(plan, scheduling_overhead_s=overhead)
    return TuningRun(
        method=method, result=result, plan=plan, profile=profile,
        planner_stats=stats,
        fault_ledger=injector.ledger if injector else None,
    )
