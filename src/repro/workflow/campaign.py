"""End-to-end serverless ML workflow: tune, then train (paper Fig. 1).

A full workflow spends part of its budget finding a good hyperparameter
configuration (SHA + Algorithm 1) and the rest training that configuration
to the target loss (Algorithm 2). The winning configuration's quality
carries over: a better config converges in fewer epochs, so money spent on
tuning buys a cheaper training phase — the trade the ``tuning_fraction``
knob controls.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ValidationError
from repro.common.types import JobResult
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.ml.models import Workload, workload as lookup_workload
from repro.tuning.executor import TuningRunResult
from repro.tuning.plan import Objective
from repro.tuning.sha import SHASpec, Trial
from repro.workflow.runner import profile_workload, run_training, run_tuning
from repro.profiling import profile_phase
from repro.timeseries import get_sampler
from repro.slo.events import get_event_bus


@dataclass(frozen=True, slots=True)
class WorkflowResult:
    """Outcome of one tune-then-train workflow."""

    tuning: TuningRunResult
    training: JobResult
    winner: Trial
    total_jct_s: float
    total_cost_usd: float
    # Combined tune+train fault/recovery ledger when a fault plan was
    # attached, else None.
    fault_ledger: object | None = None

    @property
    def within_budget(self) -> bool:
        return self.training.converged


def effective_workload(base: Workload, winner: Trial) -> Workload:
    """The training-phase workload under the winning configuration.

    A configuration of latent quality q converges ~1/q times as fast as the
    nominal curve (the same model the SHA trials trained under), so the
    training phase's expected horizon shrinks accordingly.
    """
    quality = max(0.05, min(1.0, winner.quality))
    return replace(
        base,
        learning_rate=winner.learning_rate,
        nominal_epochs=max(1.0, base.nominal_epochs / quality),
    )


def run_workflow(
    w: Workload | str,
    spec: SHASpec,
    budget_usd: float,
    tuning_fraction: float = 0.5,
    method: str = "ce-scaling",
    seed: int = 0,
    platform: PlatformConfig = DEFAULT_PLATFORM,
    fault_plan: object | None = None,
) -> WorkflowResult:
    """Run the full workflow under one total budget.

    ``tuning_fraction`` of the budget goes to hyperparameter tuning; the
    remainder (plus whatever tuning left unspent) funds model training.
    ``fault_plan`` applies to both phases (each draws from its own
    scope-keyed fault streams); the result carries the merged ledger.
    """
    if not 0.0 < tuning_fraction < 1.0:
        raise ValidationError(
            f"tuning_fraction must be in (0, 1), got {tuning_fraction}"
        )
    if budget_usd <= 0:
        raise ValidationError(f"budget_usd must be positive, got {budget_usd}")
    w = lookup_workload(w) if isinstance(w, str) else w
    profile = profile_workload(w, platform=platform)

    tuning_budget = budget_usd * tuning_fraction
    with profile_phase("workflow/tuning"):
        tuning_run = run_tuning(
            w,
            spec,
            method=method,
            objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=tuning_budget,
            seed=seed,
            platform=platform,
            profile=profile,
            fault_plan=fault_plan,
        )
    winner = tuning_run.result.winner
    bus = get_event_bus()
    ts = get_sampler()
    if bus.enabled:
        bus.emit(
            "phase_done", tuning_run.result.jct_s, scope="workflow",
            phase="tuning", jct_s=tuning_run.result.jct_s,
            cost_usd=tuning_run.result.cost_usd,
        )
    if ts.enabled:
        ts.mark("phase_done", tuning_run.result.jct_s, "tuning")
        ts.sample(
            "workflow.cost_usd", tuning_run.result.jct_s,
            tuning_run.result.cost_usd,
        )
    remaining = max(budget_usd * 0.05, budget_usd - tuning_run.result.cost_usd)

    train_w = effective_workload(w, winner)
    with profile_phase("workflow/training"):
        training_run = run_training(
            train_w,
            method=method,
            objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=remaining,
            seed=seed,
            platform=platform,
            fault_plan=fault_plan,
        )
    if bus.enabled:
        bus.emit(
            "phase_done",
            tuning_run.result.jct_s + training_run.result.jct_s,
            scope="workflow", phase="training",
            jct_s=training_run.result.jct_s,
            cost_usd=training_run.result.cost_usd,
        )
    if ts.enabled:
        total_jct = tuning_run.result.jct_s + training_run.result.jct_s
        ts.mark("phase_done", total_jct, "training")
        ts.sample(
            "workflow.cost_usd", total_jct,
            tuning_run.result.cost_usd + training_run.result.cost_usd,
        )
    fault_ledger = None
    if tuning_run.fault_ledger is not None or training_run.fault_ledger is not None:
        from repro.faults import FaultLedger

        fault_ledger = FaultLedger.merged(
            tuning_run.fault_ledger, training_run.fault_ledger
        )
    return WorkflowResult(
        tuning=tuning_run.result,
        training=training_run.result,
        winner=winner,
        total_jct_s=tuning_run.result.jct_s + training_run.result.jct_s,
        total_cost_usd=tuning_run.result.cost_usd + training_run.result.cost_usd,
        fault_ledger=fault_ledger,
    )
