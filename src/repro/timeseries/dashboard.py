"""Deterministic terminal dashboard over a ``repro-timeseries/v1`` capture.

One sparkline panel per series (sorted by name), each with its sample
count, simulated-time span, last value and high-water mark, followed by
the run's timeline markers. Rendering is a pure function of the capture
document — same bytes in, same bytes out — so ``repro dash --replay`` is
byte-stable and safe to diff across runs.
"""

from __future__ import annotations

from repro.timeseries.capture import decode_series

#: Eight-level block ramp; index = value scaled into the series' range.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

DEFAULT_WIDTH = 60


def sparkline(values: list[float], width: int = DEFAULT_WIDTH) -> str:
    """A fixed-width block-character strip for ``values``.

    Longer series are bucketed down to ``width`` cells (bucket = max of its
    members, so spikes survive); shorter series render one cell per point.
    A flat series renders at the lowest ramp level.
    """
    if not values:
        return ""
    if len(values) > width:
        bucketed = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max(lo + 1, (i + 1) * len(values) // width)
            bucketed.append(max(values[lo:hi]))
        values = bucketed
    vmin = min(values)
    vmax = max(values)
    span = vmax - vmin
    if span <= 0:
        return SPARK_CHARS[0] * len(values)
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(top, int((v - vmin) / span * top + 0.5))]
        for v in values
    )


def render_dashboard(payload: dict, width: int = DEFAULT_WIDTH) -> str:
    """The full dashboard for one capture document."""
    meta = payload.get("meta") or {}
    totals = payload["totals"]
    title_bits = [
        f"{key}={meta[key]}" for key in sorted(meta) if meta[key] is not None
    ]
    lines = [
        "repro dash — simulated-time series"
        + (f" ({', '.join(title_bits)})" if title_bits else ""),
        f"{totals['n_series']} series, {totals['n_samples']} sample(s), "
        f"{totals['n_points']} stored point(s)",
        "",
    ]
    for entry in payload["series"]:
        times, values = decode_series(entry)
        span = times[-1] - times[0] if times else 0.0
        lines.append(entry["name"])
        lines.append(f"  {sparkline(values, width=width)}")
        lines.append(
            f"  samples={entry['n_samples']} span={span:.3f}s "
            f"last={values[-1] if values else 0.0:g} "
            f"peak={entry['high_water']:g}"
            + (f" dropped={entry['dropped']}" if entry["dropped"] else "")
        )
        lines.append("")
    markers = payload["markers"]
    if markers:
        lines.append(f"markers ({len(markers)}):")
        for m in markers:
            label = f" {m['label']}" if m["label"] else ""
            lines.append(f"  [{m['t_s']:>12.3f}s] {m['kind']}{label}")
    else:
        lines.append("markers: none")
    return "\n".join(lines) + "\n"
