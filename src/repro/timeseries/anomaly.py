"""EWMA/MAD anomaly detection over ``repro-timeseries/v1`` captures.

Four named rules scan the capture for trajectory pathologies that
end-of-run aggregates hide:

* ``storage_saturation`` — an upward spike in a sync-time series
  (``train.sync_s``, ``tune.stage_sync_s``): each point's residual against
  the running EWMA is scored in robust sigmas (median absolute deviation
  scaled by 1.4826); a z >= 5 excursion means synchronization suddenly
  costs far more than its own history — the signature of a throttled or
  saturated storage backend.
* ``warm_pool_collapse`` — the warm-container pool ends the run at a
  small fraction of its own high-water mark, i.e. keep-alive expiries
  outran reuse and cold starts are coming back.
* ``concurrency_plateau`` — in-flight invocations pinned against the
  account concurrency limit for a material share of the run; the platform
  (not the allocation) is the binding constraint.
* ``budget_burn_knee`` — a cumulative cost series whose late burn rate is
  a multiple of its early rate: spend is accelerating toward the cap.

Detection is a pure function of the capture document — deterministic
order (rule, then series, then time), no randomness — and its findings
feed ``repro diagnose`` alongside the critical-path rules. Severities are
restricted to the diagnostics vocabulary (``info`` / ``warning``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.timeseries.capture import decode_series

#: EWMA smoothing factor for the spike detector's running baseline.
EWMA_ALPHA = 0.3

#: Robust z-score a residual must reach to count as a spike.
SPIKE_Z = 5.0

#: Consistency constant: sigma ~= 1.4826 * MAD for normal data.
MAD_SCALE = 1.4826

#: Minimum raw samples before the spike detector trusts its baseline.
#: (Raw, not stored: run-length compression stores a flat series as just
#: its edge points, and flat-then-spike is exactly the shape to catch.)
SPIKE_MIN_SAMPLES = 8

#: Sync-time series scanned by the storage-saturation rule.
SYNC_SERIES = ("train.sync_s", "tune.stage_sync_s")

#: Collapse = the trailing value at or below this fraction of the peak.
COLLAPSE_FRACTION = 0.25

#: ...for a pool that actually grew to at least this many containers.
COLLAPSE_MIN_PEAK = 4.0

#: Plateau = in-flight at or above this fraction of the account limit...
PLATEAU_FRACTION = 0.95

#: ...for at least this share of the series' simulated-time span.
PLATEAU_MIN_SHARE = 0.2

#: Knee = late burn rate at least this multiple of the early rate.
KNEE_RATIO = 3.0

#: Minimum stored points before the knee detector compares slopes.
KNEE_MIN_POINTS = 6

#: Cumulative-cost series scanned by the budget-burn rule.
COST_SERIES = ("train.cost_usd", "tune.cost_usd", "workflow.cost_usd")


@dataclass(frozen=True, slots=True)
class Anomaly:
    """One detector finding, anchored to a series and a simulated time."""

    rule: str
    series: str
    t_s: float
    severity: str
    message: str
    data: dict = field(default_factory=dict)


def _series_map(payload: dict) -> dict[str, dict]:
    return {entry["name"]: entry for entry in payload["series"]}


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _spike_anomalies(name: str, entry: dict) -> list[Anomaly]:
    times, values = decode_series(entry)
    if entry["n_samples"] < SPIKE_MIN_SAMPLES or len(values) < 4:
        return []
    ewma = values[0]
    residuals = []
    for v in values[1:]:
        residuals.append(v - ewma)
        ewma = EWMA_ALPHA * v + (1.0 - EWMA_ALPHA) * ewma
    # Trim the largest residuals before estimating the baseline spread —
    # otherwise a lone spike in a short series inflates the MAD enough to
    # hide itself.
    n_trim = max(1, len(residuals) // 8)
    baseline = sorted(residuals)[: len(residuals) - n_trim] or residuals
    med = _median(baseline)
    sigma = max(MAD_SCALE * _median([abs(r - med) for r in baseline]), 1e-9)
    best: Anomaly | None = None
    for i, r in enumerate(residuals, start=1):
        z = (r - med) / sigma
        if z < SPIKE_Z:
            continue
        if best is None or z > best.data["z"]:
            best = Anomaly(
                rule="storage_saturation",
                series=name,
                t_s=times[i],
                severity="warning",
                message=(
                    f"{name} spiked to {values[i]:.6g}s at "
                    f"t={times[i]:.3f}s ({z:.1f} robust sigmas above its "
                    "EWMA baseline): storage bandwidth saturated or "
                    "throttled"
                ),
                data={
                    "z": round(z, 6),
                    "value": round(values[i], 9),
                    "baseline": round(values[i] - r, 9),
                },
            )
    return [best] if best is not None else []


def _collapse_anomalies(entry: dict) -> list[Anomaly]:
    times, values = decode_series(entry)
    peak = entry["high_water"]
    if not values or peak < COLLAPSE_MIN_PEAK:
        return []
    if values[-1] > COLLAPSE_FRACTION * peak:
        return []
    return [
        Anomaly(
            rule="warm_pool_collapse",
            series=entry["name"],
            t_s=times[-1],
            severity="warning",
            message=(
                f"warm pool ended at {values[-1]:g} container(s), "
                f"{100.0 * values[-1] / peak:.0f}% of its {peak:g} peak: "
                "keep-alive expiries are outrunning reuse"
            ),
            data={"last": round(values[-1], 9), "peak": round(peak, 9)},
        )
    ]


def _plateau_anomalies(payload: dict) -> list[Anomaly]:
    series = _series_map(payload)
    inflight = series.get("platform.inflight")
    limit_entry = series.get("platform.concurrency_limit")
    if inflight is None or limit_entry is None or not limit_entry["values"]:
        return []
    limit = limit_entry["values"][-1]
    if limit <= 0:
        return []
    times, values = decode_series(inflight)
    if len(values) < 2:
        return []
    span = times[-1] - times[0]
    if span <= 0:
        return []
    bar = PLATEAU_FRACTION * limit
    # Run-length compression stores a sustained plateau as just its two
    # edge points, so measure plateau *time*: segments whose endpoints
    # both sit at/above the bar.
    plateau_s = sum(
        times[i + 1] - times[i]
        for i in range(len(values) - 1)
        if values[i] >= bar and values[i + 1] >= bar
    )
    if plateau_s < PLATEAU_MIN_SHARE * span:
        return []
    first_t = next(t for t, v in zip(times, values) if v >= bar)
    return [
        Anomaly(
            rule="concurrency_plateau",
            series="platform.inflight",
            t_s=first_t,
            severity="info",
            message=(
                f"in-flight invocations sat at >={bar:g} "
                f"({100.0 * PLATEAU_FRACTION:.0f}% of the {limit:g} account "
                f"limit) for {plateau_s:.3f}s of {span:.3f}s: the platform "
                "concurrency cap, not the allocation, is binding"
            ),
            data={
                "limit": round(limit, 9),
                "plateau_s": round(plateau_s, 9),
                "span_s": round(span, 9),
            },
        )
    ]


def _knee_anomalies(name: str, entry: dict) -> list[Anomaly]:
    times, values = decode_series(entry)
    if len(values) < KNEE_MIN_POINTS:
        return []
    mid = len(values) // 2
    knee = 3 * len(values) // 4
    early_dt = times[mid] - times[0]
    late_dt = times[-1] - times[knee]
    if early_dt <= 0 or late_dt <= 0:
        return []
    early_rate = (values[mid] - values[0]) / early_dt
    late_rate = (values[-1] - values[knee]) / late_dt
    if early_rate <= 0 or late_rate < KNEE_RATIO * early_rate:
        return []
    return [
        Anomaly(
            rule="budget_burn_knee",
            series=name,
            t_s=times[knee],
            severity="info",
            message=(
                f"{name} burn rate rose to {late_rate:.6g} USD/s in the "
                f"last quarter vs {early_rate:.6g} USD/s early "
                f"({late_rate / early_rate:.1f}x): spend is accelerating "
                "toward the cap"
            ),
            data={
                "early_usd_per_s": round(early_rate, 9),
                "late_usd_per_s": round(late_rate, 9),
            },
        )
    ]


def detect_anomalies(payload: dict) -> list[Anomaly]:
    """Every rule's findings over one capture, deterministically ordered."""
    series = _series_map(payload)
    anomalies: list[Anomaly] = []
    for name in SYNC_SERIES:
        if name in series:
            anomalies.extend(_spike_anomalies(name, series[name]))
    if "platform.warm_pool" in series:
        anomalies.extend(_collapse_anomalies(series["platform.warm_pool"]))
    anomalies.extend(_plateau_anomalies(payload))
    for name in COST_SERIES:
        if name in series:
            anomalies.extend(_knee_anomalies(name, series[name]))
    return sorted(anomalies, key=lambda a: (a.rule, a.series, a.t_s))
