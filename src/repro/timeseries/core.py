"""The simulated-time sampler: per-series buffers, markers, high-water marks.

A :class:`TimeSeriesSampler` records how cluster state *evolves* over a
run — in-flight invocations against the account limit, warm-pool size,
per-backend storage bandwidth, the scheduler's active allocation, SHA
survivors, burn-rate ladder level, cumulative spend — as (simulated time,
value) points keyed by series name. Instrumented sites pass their own
simulation clock explicitly (``sim.now``, the executor's ``jct``, a
service's cumulative busy time); nothing here reads a host clock, consumes
randomness, or branches simulation logic, so runs are byte-identical with
the sampler installed or not.

Buffers are delta-compressed on ingestion: a run of consecutive identical
values keeps only its first and last point (the last point's timestamp
advances in place), which is what lets step-shaped series — allocation
size, burn level, SHA survivors — stay tiny over thousands of samples.
Per-series point caps turn overflow into a deterministic ``dropped``
counter instead of unbounded memory.

The process-global default is a :class:`NullSampler` (see
``repro.timeseries.__init__``), mirroring the telemetry/profiling
collectors: sampling sites pay one attribute check when recording is off.
"""

from __future__ import annotations

#: Per-series point cap. Overflow increments the series' ``dropped``
#: counter; ``n_samples`` and the high-water mark keep counting.
DEFAULT_MAX_POINTS = 4096

#: Cap on recorded markers (reallocations, phase boundaries, bus events).
DEFAULT_MAX_MARKERS = 4096


class SeriesBuffer:
    """One named series: compressed points, raw count, high-water mark."""

    __slots__ = (
        "name", "times", "values", "n_samples", "dropped", "high_water",
        "max_points",
    )

    def __init__(self, name: str, max_points: int = DEFAULT_MAX_POINTS) -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []
        self.n_samples = 0
        self.dropped = 0
        self.high_water = float("-inf")
        self.max_points = max_points

    def append(self, t_s: float, value: float) -> None:
        """Record one sample; runs of equal values compress in place."""
        self.n_samples += 1
        if value > self.high_water:
            self.high_water = value
        values = self.values
        if (
            len(values) >= 2
            and values[-1] == value
            and values[-2] == value
        ):
            # Extend the current run instead of storing a new point: the
            # run's first point keeps the step edge, its last point tracks
            # how long the value held.
            self.times[-1] = t_s
            return
        if len(values) >= self.max_points:
            self.dropped += 1
            return
        self.times.append(t_s)
        values.append(value)

    @property
    def last(self) -> float:
        """The most recent value (high-water of an empty series is -inf)."""
        return self.values[-1] if self.values else float("-inf")

    def __len__(self) -> int:
        return len(self.values)


class Marker:
    """One discrete annotation on the run's timeline."""

    __slots__ = ("kind", "t_s", "label")

    def __init__(self, kind: str, t_s: float, label: str = "") -> None:
        self.kind = kind
        self.t_s = t_s
        self.label = label


class TimeSeriesSampler:
    """Collects simulated-time series and markers for one run.

    Strictly observational — the same contract the telemetry collectors,
    event bus and hot-path profiler carry: installing a sampler must leave
    every simulated result bit-identical.
    """

    def __init__(
        self,
        max_points: int = DEFAULT_MAX_POINTS,
        max_markers: int = DEFAULT_MAX_MARKERS,
    ) -> None:
        self.series: dict[str, SeriesBuffer] = {}
        self.markers: list[Marker] = []
        self.max_points = max_points
        self.max_markers = max_markers
        self.dropped_markers = 0

    @property
    def enabled(self) -> bool:
        return True

    def sample(self, name: str, t_s: float, value: float) -> None:
        """Record one (simulated time, value) point on series ``name``."""
        buf = self.series.get(name)
        if buf is None:
            buf = self.series[name] = SeriesBuffer(
                name, max_points=self.max_points
            )
        buf.append(t_s, float(value))

    def mark(self, kind: str, t_s: float, label: str = "") -> None:
        """Annotate the timeline (reallocation, phase boundary, bus event)."""
        if len(self.markers) >= self.max_markers:
            self.dropped_markers += 1
            return
        self.markers.append(Marker(kind, t_s, label))

    def high_water(self, name: str) -> float:
        """A series' high-water mark (0.0 when the series was never fed)."""
        buf = self.series.get(name)
        if buf is None or buf.n_samples == 0:
            return 0.0
        return buf.high_water

    def n_points(self) -> int:
        """Stored (compressed) points across every series."""
        return sum(len(self.series[name]) for name in sorted(self.series))


class NullSampler:
    """The default sampler: does nothing, costs one attribute check."""

    series: dict[str, SeriesBuffer] = {}
    markers: list[Marker] = []
    dropped_markers = 0

    @property
    def enabled(self) -> bool:
        return False

    def sample(self, name: str, t_s: float, value: float) -> None:
        pass

    def mark(self, kind: str, t_s: float, label: str = "") -> None:
        pass

    def high_water(self, name: str) -> float:
        return 0.0

    def n_points(self) -> int:
        return 0
