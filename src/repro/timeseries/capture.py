"""The versioned ``repro-timeseries/v1`` capture: build, save, load, render.

A capture is the byte-stable JSON form of one sampler's series — each
series delta-encoded (``t0_s`` plus a list of timestamp deltas) with its
run-length-compressed values, raw sample count, drop count and high-water
mark — plus the run's timeline markers and document totals. Every
timestamp is simulated time handed in by the instrumented layer, so for a
fixed (workload, seed, plan) the whole document is deterministic, which is
what makes captures replayable (``repro dash --replay``) and diffable
(``repro timeseries diff``).
"""

from __future__ import annotations

import json

from repro.common.errors import ValidationError
from repro.common.meta import coerce_meta
from repro.timeseries.core import TimeSeriesSampler

JSON_SCHEMA = "repro-timeseries/v1"

#: Top-level keys — must match the REP006 registry entry in
#: ``repro.analysis.rules.schema.SCHEMA_KEYS``.
_TOP_KEYS = frozenset({"schema", "meta", "series", "markers", "totals"})

_SERIES_KEYS = frozenset(
    {"name", "t0_s", "dt_s", "values", "n_samples", "dropped", "high_water"}
)

_MARKER_KEYS = frozenset({"kind", "t_s", "label", "seq"})


def capture_payload(sampler: TimeSeriesSampler, meta: dict | None = None) -> dict:
    """The ``repro-timeseries/v1`` document for ``sampler``'s series."""
    series = []
    for name in sorted(sampler.series):
        buf = sampler.series[name]
        deltas = [
            round(buf.times[i] - buf.times[i - 1], 9)
            for i in range(1, len(buf.times))
        ]
        series.append(
            {
                "name": name,
                "t0_s": round(buf.times[0], 9) if buf.times else 0.0,
                "dt_s": deltas,
                "values": [round(v, 9) for v in buf.values],
                "n_samples": buf.n_samples,
                "dropped": buf.dropped,
                "high_water": round(buf.high_water, 9) if buf.values else 0.0,
            }
        )
    markers = [
        {
            "kind": m.kind,
            "t_s": round(m.t_s, 9),
            "label": m.label,
            "seq": seq,
        }
        for seq, m in enumerate(sampler.markers)
    ]
    return {
        "schema": JSON_SCHEMA,
        "meta": coerce_meta(meta),
        "series": series,
        "markers": markers,
        "totals": {
            "n_series": len(series),
            "n_points": sum(len(s["values"]) for s in series),
            "n_samples": sum(s["n_samples"] for s in series),
            "dropped": sum(s["dropped"] for s in series)
            + sampler.dropped_markers,
        },
    }


def decode_series(entry: dict) -> tuple[list[float], list[float]]:
    """Expand one capture series entry back to (times, values) lists."""
    values = list(entry["values"])
    if not values:
        return [], []
    times = [entry["t0_s"]]
    for dt in entry["dt_s"]:
        times.append(times[-1] + dt)
    return times, values


def to_json(payload: dict) -> str:
    """Byte-stable serialization (sorted keys, trailing newline)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def load_capture(text: str) -> dict:
    """Parse and validate a ``repro-timeseries/v1`` document."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"capture is not valid JSON: {exc}") from exc
    validate_capture(payload)
    return payload


def validate_capture(payload: dict) -> None:
    """Raise :class:`ValidationError` unless ``payload`` matches the schema."""
    if not isinstance(payload, dict):
        raise ValidationError("capture must be a JSON object")
    schema = payload.get("schema")
    if schema != JSON_SCHEMA:
        raise ValidationError(
            f"expected schema {JSON_SCHEMA!r}, got {schema!r}"
        )
    if set(payload) != _TOP_KEYS:
        raise ValidationError(
            f"capture top-level keys {sorted(payload)} do not match the "
            f"{JSON_SCHEMA} contract {sorted(_TOP_KEYS)}"
        )
    if not isinstance(payload["series"], list):
        raise ValidationError("capture 'series' must be a list")
    for entry in payload["series"]:
        missing = _SERIES_KEYS - set(entry)
        if missing:
            raise ValidationError(
                f"capture series {entry.get('name')!r} lacks keys "
                f"{sorted(missing)}"
            )
        if len(entry["dt_s"]) != max(0, len(entry["values"]) - 1):
            raise ValidationError(
                f"series {entry.get('name')!r}: {len(entry['values'])} "
                f"values need {max(0, len(entry['values']) - 1)} deltas, "
                f"got {len(entry['dt_s'])}"
            )
    if not isinstance(payload["markers"], list):
        raise ValidationError("capture 'markers' must be a list")
    for marker in payload["markers"]:
        missing = _MARKER_KEYS - set(marker)
        if missing:
            raise ValidationError(
                f"capture marker {marker.get('kind')!r} lacks keys "
                f"{sorted(missing)}"
            )


def render_capture(payload: dict) -> str:
    """One summary line per series (sorted by name), then marker counts."""
    totals = payload["totals"]
    lines = [
        f"timeseries: {totals['n_series']} series, {totals['n_points']} "
        f"stored point(s) from {totals['n_samples']} sample(s)",
    ]
    for entry in payload["series"]:
        times, values = decode_series(entry)
        span = times[-1] - times[0] if times else 0.0
        last = values[-1] if values else 0.0
        lines.append(
            f"  {entry['name']:42s} {entry['n_samples']:>6d} samples "
            f"{len(values):>5d} pts  span={span:.3f}s  last={last:g}  "
            f"peak={entry['high_water']:g}"
        )
    if payload["markers"]:
        kinds: dict[str, int] = {}
        for m in payload["markers"]:
            kinds[m["kind"]] = kinds.get(m["kind"], 0) + 1
        parts = ", ".join(f"{k}={kinds[k]}" for k in sorted(kinds))
        lines.append(f"  markers: {parts}")
    if totals.get("dropped"):
        lines.append(
            f"(point cap hit: {totals['dropped']} sample(s)/marker(s) not "
            "stored; counts and high-water marks are complete)"
        )
    return "\n".join(lines)
