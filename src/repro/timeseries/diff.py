"""Cross-run capture diffing: per-series drift classification.

``repro timeseries diff A B`` compares two ``repro-timeseries/v1``
captures series by series and classifies each into exactly one bucket:

* ``identical`` — byte-equal points (same timestamps, same values).
* ``added`` / ``missing`` — present in only one capture.
* ``divergent`` — both mean and peak moved beyond the threshold.
* ``level_shift`` — the mean moved beyond the threshold, the peak held.
* ``peak_shift`` — the peak moved beyond the threshold, the mean held.
* ``resampled`` — stats within threshold but point/sample counts differ
  (e.g. a run that took more epochs to converge at the same levels).
* ``jitter`` — same shape, sub-threshold numeric wiggle.

Means are taken over the stored (run-length-compressed) points, which is
deterministic and biased toward step *edges* — exactly the transitions a
drift check cares about. ``added``/``missing``/``divergent``/
``level_shift``/``peak_shift`` count as drift; ``has_drift`` (and the
CLI's exit code) keys off those. The report itself is a versioned
``repro-timeseries-diff/v1`` document.
"""

from __future__ import annotations

import json

from repro.common.meta import coerce_meta
from repro.timeseries.capture import validate_capture

DIFF_SCHEMA = "repro-timeseries-diff/v1"

#: Top-level keys — must match the REP006 registry entry in
#: ``repro.analysis.rules.schema.SCHEMA_KEYS``.
_TOP_KEYS = frozenset({"schema", "meta", "base", "target", "series", "summary"})

#: Relative change in a series' mean or peak that counts as drift.
DEFAULT_THRESHOLD = 0.05

#: Classes (beyond added/missing) a series can land in, in check order.
CLASSES = (
    "identical",
    "divergent",
    "level_shift",
    "peak_shift",
    "resampled",
    "jitter",
)

_DRIFT_CLASSES = frozenset(
    {"added", "missing", "divergent", "level_shift", "peak_shift"}
)


def _stats(entry: dict) -> dict:
    values = entry["values"]
    return {
        "n_samples": entry["n_samples"],
        "n_points": len(values),
        "mean": sum(values) / len(values) if values else 0.0,
        "peak": entry["high_water"],
        "last": values[-1] if values else 0.0,
    }


def _rel_delta(a: float, b: float) -> float:
    scale = max(abs(a), abs(b))
    if scale <= 0:
        return 0.0
    return abs(a - b) / scale


def _classify(base: dict, target: dict, threshold: float) -> tuple[str, dict]:
    b, t = _stats(base), _stats(target)
    deltas = {
        "mean_rel_delta": round(_rel_delta(b["mean"], t["mean"]), 9),
        "peak_rel_delta": round(_rel_delta(b["peak"], t["peak"]), 9),
    }
    if (
        base["t0_s"] == target["t0_s"]
        and base["dt_s"] == target["dt_s"]
        and base["values"] == target["values"]
    ):
        return "identical", deltas
    mean_moved = deltas["mean_rel_delta"] > threshold
    peak_moved = deltas["peak_rel_delta"] > threshold
    if mean_moved and peak_moved:
        return "divergent", deltas
    if mean_moved:
        return "level_shift", deltas
    if peak_moved:
        return "peak_shift", deltas
    if b["n_points"] != t["n_points"] or b["n_samples"] != t["n_samples"]:
        return "resampled", deltas
    return "jitter", deltas


def diff_captures(
    base: dict,
    target: dict,
    threshold: float = DEFAULT_THRESHOLD,
    meta: dict | None = None,
) -> dict:
    """The ``repro-timeseries-diff/v1`` report for two captures."""
    validate_capture(base)
    validate_capture(target)
    base_series = {entry["name"]: entry for entry in base["series"]}
    target_series = {entry["name"]: entry for entry in target["series"]}
    rows = []
    counts: dict[str, int] = {}
    for name in sorted(set(base_series) | set(target_series)):
        b = base_series.get(name)
        t = target_series.get(name)
        if b is None:
            cls, deltas = "added", {}
        elif t is None:
            cls, deltas = "missing", {}
        else:
            cls, deltas = _classify(b, t, threshold)
        counts[cls] = counts.get(cls, 0) + 1
        row = {
            "name": name,
            "class": cls,
            "base": _round_stats(_stats(b)) if b is not None else None,
            "target": _round_stats(_stats(t)) if t is not None else None,
        }
        row.update(deltas)
        rows.append(row)
    drifted = sorted(
        row["name"] for row in rows if row["class"] in _DRIFT_CLASSES
    )
    return {
        "schema": DIFF_SCHEMA,
        "meta": coerce_meta(meta),
        "base": dict(base.get("meta") or {}),
        "target": dict(target.get("meta") or {}),
        "series": rows,
        "summary": {
            "threshold": threshold,
            "n_series": len(rows),
            "classes": {cls: counts[cls] for cls in sorted(counts)},
            "drifted": drifted,
        },
    }


def _round_stats(stats: dict) -> dict:
    return {
        key: round(value, 9) if isinstance(value, float) else value
        for key, value in stats.items()
    }


def diff_to_json(report: dict) -> str:
    """Byte-stable serialization (sorted keys, trailing newline)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def has_drift(report: dict) -> bool:
    """True when any series drifted (added/missing/shifted/divergent)."""
    return bool(report["summary"]["drifted"])


def render_diff(report: dict) -> str:
    """Human-readable report: summary line, then one row per series."""
    summary = report["summary"]
    class_bits = ", ".join(
        f"{cls}={summary['classes'][cls]}" for cls in sorted(summary["classes"])
    )
    lines = [
        f"timeseries diff: {summary['n_series']} series "
        f"(threshold {summary['threshold']:g}): {class_bits or 'none'}",
    ]
    for row in report["series"]:
        detail = ""
        if row["class"] in ("added", "missing"):
            side = row["target"] if row["class"] == "added" else row["base"]
            if side is not None:
                detail = f"  ({side['n_samples']} samples)"
        elif row["base"] is not None and row["target"] is not None:
            detail = (
                f"  mean {row['base']['mean']:g} -> {row['target']['mean']:g}"
                f"  peak {row['base']['peak']:g} -> {row['target']['peak']:g}"
            )
        lines.append(f"  {row['class']:>11s}  {row['name']}{detail}")
    lines.append(
        "drift detected: "
        + (", ".join(summary["drifted"]) if summary["drifted"] else "no")
    )
    return "\n".join(lines)
