"""Simulated-time metrics pipeline: series, dashboard, diffs, anomalies.

The process-global default is a :class:`NullSampler`, so the sampling
hooks on the platform/storage/scheduler/tuning/SLO/billing paths cost one
attribute check until a caller installs a real :class:`TimeSeriesSampler`::

    from repro.timeseries import TimeSeriesSampler, get_sampler, set_sampler

    ts = TimeSeriesSampler()
    set_sampler(ts)
    ...  # run jobs; concurrency/warm-pool/cost series accumulate
    set_sampler(None)

or, scoped, via :class:`repro.timeseries.session.TimeSeriesSession` (what
the CLI's ``--timeseries`` flag and ``repro dash`` use). Like telemetry
and profiling, sampling is strictly observational: it never consumes
randomness and never branches simulation logic, so simulated results are
bit-identical with the sampler installed or not.

Instrumentation sites record points against their own simulation clock::

    ts = get_sampler()
    if ts.enabled:
        ts.sample("platform.warm_pool", sim.now, float(pool.total_warm(sim.now)))

and the collected series export as a ``repro-timeseries/v1`` capture —
delta-encoded timestamps, run-length-compressed values, per-series
high-water marks — which ``repro dash`` renders as a terminal dashboard,
``repro timeseries diff`` classifies drift over, and
:func:`repro.timeseries.anomaly.detect_anomalies` scans for warm-pool
collapse, storage saturation, concurrency plateaus and budget-burn knees
(surfaced through ``repro diagnose``).

REP002 note: this package is in the lint's simulated-packages scope; it
contains no host-clock call sites at all — every timestamp is handed in
by the instrumented layer.
"""

from __future__ import annotations

from repro.timeseries.anomaly import Anomaly, detect_anomalies
from repro.timeseries.capture import (
    capture_payload,
    decode_series,
    load_capture,
    render_capture,
    to_json,
    validate_capture,
)
from repro.timeseries.core import (
    Marker,
    NullSampler,
    SeriesBuffer,
    TimeSeriesSampler,
)
from repro.timeseries.dashboard import render_dashboard
from repro.timeseries.diff import (
    diff_captures,
    diff_to_json,
    has_drift,
    render_diff,
)
from repro.timeseries.session import TimeSeriesSession, peaks_summary

_NULL_SAMPLER = NullSampler()
_sampler = _NULL_SAMPLER


def get_sampler():
    """The process-global sampler (a no-op unless installed)."""
    return _sampler


def set_sampler(sampler) -> None:
    """Install (or, with ``None``, uninstall) the global sampler."""
    global _sampler
    _sampler = sampler if sampler is not None else _NULL_SAMPLER


def sampling_enabled() -> bool:
    """True when a real sampler is installed."""
    return _sampler.enabled


__all__ = [
    "Anomaly",
    "Marker",
    "NullSampler",
    "SeriesBuffer",
    "TimeSeriesSampler",
    "TimeSeriesSession",
    "capture_payload",
    "decode_series",
    "detect_anomalies",
    "diff_captures",
    "diff_to_json",
    "get_sampler",
    "has_drift",
    "load_capture",
    "peaks_summary",
    "render_capture",
    "render_dashboard",
    "render_diff",
    "sampling_enabled",
    "set_sampler",
    "to_json",
    "validate_capture",
]
