"""Scoped sampling: install the sampler, run, export, restore.

Mirrors :class:`repro.profiling.session.ProfileSession` — the CLI's
``--timeseries PATH`` flag (and ``repro dash WORKLOAD``) wrap each command
in a :class:`TimeSeriesSession`; libraries can do the same around any
block of work::

    with TimeSeriesSession(capture_path="ts.json") as session:
        run_training("lr-higgs", budget_usd=20.0)
    # ts.json now holds the repro-timeseries/v1 capture

If a live event bus is installed when the session enters, every bus event
also lands on the sampler's timeline as a marker (kind + simulated time +
scope), which is how reallocations, SHA stage transitions and SLO alerts
show up on the dashboard. On clean exit the session writes the capture,
then restores whatever sampler was installed before — sessions nest
safely. With no path and ``force_install=False`` the session installs
nothing and writes nothing, so callers never branch.
"""

from __future__ import annotations

from pathlib import Path

from repro.common.meta import coerce_meta
from repro.timeseries.capture import capture_payload, to_json
from repro.timeseries.core import TimeSeriesSampler


class TimeSeriesSession:
    """Context manager that samples a block and exports the capture."""

    def __init__(
        self,
        capture_path: str | Path | None = None,
        meta: dict | None = None,
        force_install: bool = False,
    ) -> None:
        self.capture_path = Path(capture_path) if capture_path else None
        self.meta = coerce_meta(meta)
        self.force_install = force_install
        self.sampler: TimeSeriesSampler | None = None
        self._prev = None

    @property
    def active(self) -> bool:
        return self.capture_path is not None or self.force_install

    def payload(self) -> dict:
        """The capture document for this session's sampler."""
        if self.sampler is None:
            raise RuntimeError("session never installed a sampler")
        return capture_payload(self.sampler, meta=self.meta)

    def __enter__(self) -> "TimeSeriesSession":
        if self.active:
            # Local imports: every instrumented layer (including the SLO
            # guard, whose events module the bus lives next to) imports
            # this package, so both dependencies resolve lazily to keep
            # the module graph acyclic.
            from repro.slo.events import get_event_bus
            from repro.timeseries import get_sampler, set_sampler

            self._prev = get_sampler()
            self.sampler = TimeSeriesSampler()
            set_sampler(self.sampler)
            bus = get_event_bus()
            if bus.enabled:
                sampler = self.sampler
                bus.subscribe(
                    lambda event: sampler.mark(
                        event.kind, event.t_s, label=event.scope
                    )
                )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.sampler is None:
            return
        from repro.timeseries import set_sampler

        set_sampler(self._prev)
        if exc_type is not None:
            return  # don't write partial captures over a crash
        if self.capture_path is not None:
            self.capture_path.write_text(to_json(self.payload()))


def peaks_summary(sampler: TimeSeriesSampler) -> dict:
    """High-water marks for the run summary / ``repro report`` peaks rows.

    Derived purely from the sampler's series, so the summary exists only
    when sampling was on — sampler-off runs keep their pre-existing byte
    output.
    """
    storage_peak = 0.0
    for name in sorted(sampler.series):
        if name.startswith("storage.") and name.endswith(".bandwidth_mb_s"):
            storage_peak = max(storage_peak, sampler.high_water(name))
    return {
        "concurrency": sampler.high_water("platform.inflight"),
        "warm_pool": sampler.high_water("platform.warm_pool"),
        "storage_bandwidth_mb_s": storage_peak,
    }
