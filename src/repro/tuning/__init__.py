"""Hyperparameter tuning: SHA/HyperBand/BOHB, partitioning, Algorithm 1."""

from repro.tuning.asha import ASHAEngine, ASHASpec
from repro.tuning.bohb import BOHBEngine, BOHBResult, BOHBRunner, TPESampler
from repro.tuning.exact import ExactResult, solve_exact
from repro.tuning.executor import TuningExecutor, TuningRunResult
from repro.tuning.greedy_planner import GreedyHeuristicPlanner
from repro.tuning.hyperband import BracketSpec, HyperBandSpec
from repro.tuning.plan import Objective, PartitionPlan, PlanEvaluation, evaluate_plan
from repro.tuning.sha import SHAEngine, SHASpec, Trial
from repro.tuning.static_planner import (
    even_budget_plan,
    optimal_static_plan,
    static_plan,
)

__all__ = [
    "ASHAEngine",
    "ASHASpec",
    "BOHBEngine",
    "BOHBResult",
    "BOHBRunner",
    "BracketSpec",
    "ExactResult",
    "GreedyHeuristicPlanner",
    "HyperBandSpec",
    "Objective",
    "PartitionPlan",
    "PlanEvaluation",
    "SHAEngine",
    "SHASpec",
    "TPESampler",
    "Trial",
    "TuningExecutor",
    "TuningRunResult",
    "evaluate_plan",
    "even_budget_plan",
    "optimal_static_plan",
    "solve_exact",
    "static_plan",
]
