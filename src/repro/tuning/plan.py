"""Resource-partitioning plans for hyperparameter tuning (paper §III-C).

A plan assigns one allocation θ_i (a point on the Pareto boundary 𝒫) to
every SHA stage. Its predicted JCT and cost follow Eq. (7)-(8):

* ``T_h(a) = Σ_i r_i * t'(θ_i) * waves_i`` — stage durations are serial;
  ``waves_i = ceil(q_i * n_i / C)`` accounts for the account concurrency
  limit C forcing trials to queue in waves when a stage demands more
  functions than the platform grants.
* ``C_h(a) = Σ_i q_i * r_i * c'(θ_i)`` — every trial of every stage pays
  its per-epoch cost.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.analytical.pareto import ProfiledAllocation
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.tuning.sha import SHASpec, StageShape


class Objective(enum.Enum):
    """What the planner optimizes (the other dimension is the constraint)."""

    MIN_JCT_GIVEN_BUDGET = "min_jct"
    MIN_COST_GIVEN_QOS = "min_cost"


@dataclass(frozen=True, slots=True)
class PartitionPlan:
    """One allocation per SHA stage."""

    stages: tuple[ProfiledAllocation, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValidationError("a plan needs at least one stage")

    def replace_stage(self, index: int, point: ProfiledAllocation) -> "PartitionPlan":
        """A copy with stage ``index`` reassigned to ``point``."""
        stages = list(self.stages)
        stages[index] = point
        return PartitionPlan(tuple(stages))

    @staticmethod
    def uniform(point: ProfiledAllocation, n_stages: int) -> "PartitionPlan":
        """A static plan: the same allocation for every stage."""
        return PartitionPlan(tuple([point] * n_stages))


@dataclass(frozen=True, slots=True)
class PlanEvaluation:
    """Predicted JCT and cost of a plan under a given SHA spec."""

    jct_s: float
    cost_usd: float
    stage_jct_s: tuple[float, ...]
    stage_cost_usd: tuple[float, ...]


def stage_waves(
    q_trials: int, n_functions: int, platform: PlatformConfig = DEFAULT_PLATFORM
) -> int:
    """Execution waves forced by the account concurrency limit."""
    demanded = q_trials * n_functions
    return max(1, math.ceil(demanded / platform.limits.max_concurrency))


def evaluate_plan(
    plan: PartitionPlan,
    spec: StageShape,
    platform: PlatformConfig = DEFAULT_PLATFORM,
) -> PlanEvaluation:
    """Predicted JCT/cost of ``plan`` — Eq. (7) objective and (8) cost."""
    if len(plan.stages) != spec.n_stages:
        raise ValidationError(
            f"plan has {len(plan.stages)} stages, SHA spec needs {spec.n_stages}"
        )
    stage_jct = []
    stage_cost = []
    for i, point in enumerate(plan.stages):
        q = spec.trials_in_stage(i)
        r = spec.epochs_in_stage(i)
        waves = stage_waves(q, point.allocation.n_functions, platform)
        stage_jct.append(r * point.time_s * waves)
        stage_cost.append(q * r * point.cost_usd)
    return PlanEvaluation(
        jct_s=sum(stage_jct),
        cost_usd=sum(stage_cost),
        stage_jct_s=tuple(stage_jct),
        stage_cost_usd=tuple(stage_cost),
    )
