"""Exact (discretized) solver for the partitioning knapsack.

The paper formulates stage partitioning as a multiple-choice knapsack
(NP-hard) and solves it greedily. For small instances, a dynamic program
over a discretized constraint axis yields a certifiably near-optimal
reference, which the ablation benchmarks use to measure the greedy
planner's optimality gap.

Discretization rounds each stage's constrained quantity *up* to the grid,
so the returned plan always satisfies the constraint; finer grids tighten
the bound toward the true optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConstraintError, ValidationError
from repro.analytical.pareto import ProfiledAllocation
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.tuning.plan import Objective, PartitionPlan, evaluate_plan, stage_waves
from repro.tuning.sha import SHASpec


@dataclass(frozen=True, slots=True)
class ExactResult:
    """The DP's plan and its exact evaluation."""

    plan: PartitionPlan
    jct_s: float
    cost_usd: float


def solve_exact(
    candidates: list[ProfiledAllocation],
    spec: SHASpec,
    objective: Objective,
    budget_usd: float | None = None,
    qos_s: float | None = None,
    grid: int = 600,
    platform: PlatformConfig = DEFAULT_PLATFORM,
) -> ExactResult:
    """Near-optimal plan by DP over a ``grid``-step constraint axis.

    For cost-min the constrained axis is time (QoS); for JCT-min it is
    money (budget). Raises :class:`ConstraintError` when even the best
    plan cannot satisfy the constraint at this discretization.
    """
    if not candidates:
        raise ValidationError("empty candidate set")
    if objective is Objective.MIN_COST_GIVEN_QOS:
        if qos_s is None:
            raise ConstraintError("cost minimization needs qos_s")
        limit = qos_s
    else:
        if budget_usd is None:
            raise ConstraintError("JCT minimization needs budget_usd")
        limit = budget_usd
    if limit <= 0:
        raise ConstraintError(f"constraint must be positive, got {limit}")
    step = limit / grid

    # Per-stage options: (constrained quantity in grid steps, objective value).
    stage_options: list[list[tuple[int, float, int]]] = []
    for i in range(spec.n_stages):
        q = spec.trials_in_stage(i)
        r = spec.epochs_in_stage(i)
        opts = []
        for idx, p in enumerate(candidates):
            waves = stage_waves(q, p.allocation.n_functions, platform)
            time_s = r * p.time_s * waves
            cost = q * r * p.cost_usd
            if objective is Objective.MIN_COST_GIVEN_QOS:
                constrained, value = time_s, cost
            else:
                constrained, value = cost, time_s
            steps = math.ceil(constrained / step)
            if steps <= grid:
                opts.append((steps, value, idx))
        if not opts:
            raise ConstraintError(
                f"stage {i} has no allocation fitting the constraint"
            )
        stage_options.append(opts)

    inf = float("inf")
    dp = [inf] * (grid + 1)
    dp[0] = 0.0
    choice: list[list[int]] = []
    for opts in stage_options:
        nxt = [inf] * (grid + 1)
        pick = [-1] * (grid + 1)
        for used in range(grid + 1):
            if dp[used] == inf:
                continue
            for steps, value, idx in opts:
                total = used + steps
                if total <= grid and dp[used] + value < nxt[total]:
                    nxt[total] = dp[used] + value
                    pick[total] = idx * (grid + 1) + used
        dp = nxt
        choice.append(pick)

    best_used = min(
        (u for u in range(grid + 1) if dp[u] < inf),
        key=lambda u: dp[u],
        default=None,
    )
    if best_used is None:
        raise ConstraintError("no plan satisfies the constraint at this grid")

    # Backtrack.
    stages_rev: list[ProfiledAllocation] = []
    used = best_used
    for i in range(spec.n_stages - 1, -1, -1):
        encoded = choice[i][used]
        idx, used = divmod(encoded, grid + 1)
        stages_rev.append(candidates[idx])
    plan = PartitionPlan(tuple(reversed(stages_rev)))
    ev = evaluate_plan(plan, spec, platform)
    return ExactResult(plan=plan, jct_s=ev.jct_s, cost_usd=ev.cost_usd)
