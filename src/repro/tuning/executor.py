"""Executes a hyperparameter-tuning job under a partitioning plan.

Couples the SHA learning engine (which trials live or die) with the resource
side (how long each stage takes and costs under its allocation θ_i). Stage
durations and costs are the analytical estimates perturbed by the platform's
compute/network noise — the same noise model the training executor's
discrete-event runs use — so measured results deviate from planner
predictions realistically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.rng import stream_for
from repro.common.types import Allocation
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.tuning.plan import PartitionPlan, stage_waves
from repro.tuning.sha import SHAEngine, SHASpec, StageShape, Trial
from repro.ml.models import Workload
from repro.profiling import profile_phase
from repro.telemetry import get_tracer
from repro.timeseries import get_sampler
from repro.slo.events import get_event_bus


@dataclass(frozen=True, slots=True)
class StageRecord:
    """Measured outcome of one SHA stage."""

    stage: int
    n_trials: int
    epochs_per_trial: int
    allocation: Allocation
    jct_s: float
    cost_usd: float
    sync_s: float
    waves: int

    @property
    def cost_per_trial_usd(self) -> float:
        """Average spend per trial in this stage (Fig. 11's y-axis)."""
        return self.cost_usd / self.n_trials


@dataclass
class TuningRunResult:
    """Measured outcome of a full tuning job."""

    jct_s: float
    cost_usd: float
    stages: list[StageRecord] = field(default_factory=list)
    winner: Trial | None = None
    scheduling_overhead_s: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def comm_overhead_s(self) -> float:
        return sum(s.sync_s for s in self.stages)


@dataclass
class TuningExecutor:
    """Runs SHA stage by stage under a plan, with measurement noise."""

    workload: Workload
    spec: StageShape
    platform: PlatformConfig = field(default_factory=lambda: DEFAULT_PLATFORM)
    seed: int = 0
    # A repro.faults.FaultInjector (scope "tune"), or None. Stage-grained:
    # storage transients and throttle windows stretch a stage's JCT; the
    # per-worker crash/retry machinery lives in the training executor's
    # discrete-event epochs.
    fault_injector: object | None = None
    # A repro.kernel.EventKernel, or None. When set, each stage's wall
    # time is dispatched as a SCHEDULER-priority event so tuning stages
    # advance the same unified timeline as platform execution, instead
    # of the stage loop keeping a private total_jct-only clock.
    kernel: object | None = None

    def run(
        self,
        plan: PartitionPlan,
        scheduling_overhead_s: float = 0.0,
        engine: SHAEngine | None = None,
    ) -> TuningRunResult:
        """Execute the tuning job; returns measured JCT/cost and the winner.

        ``scheduling_overhead_s`` (planner wall time) is added to the JCT,
        matching the paper's note that all results include it. A custom
        ``engine`` (e.g. a BOHB engine with model-sampled configurations)
        may replace the default SHA engine; it must match the spec's shape.
        """
        with profile_phase("tune/run"):
            return self._run(plan, scheduling_overhead_s, engine)

    def _run(
        self,
        plan: PartitionPlan,
        scheduling_overhead_s: float,
        engine: SHAEngine | None,
    ) -> TuningRunResult:
        if len(plan.stages) != self.spec.n_stages:
            raise ValidationError(
                f"plan has {len(plan.stages)} stages, spec needs {self.spec.n_stages}"
            )
        rng = stream_for(self.seed, "tuning-exec", self.workload.name)
        if engine is None:
            engine = SHAEngine(self.spec, self.workload, seed=self.seed)
        elif engine.spec is not self.spec:
            raise ValidationError("custom engine must share the executor's spec")
        records: list[StageRecord] = []
        bus = get_event_bus()
        ts = get_sampler()
        total_jct = scheduling_overhead_s
        total_cost = 0.0
        for i, point in enumerate(plan.stages):
            with profile_phase("tune/stage") as ph:
                q = self.spec.trials_in_stage(i)
                r = self.spec.epochs_in_stage(i)
                ph.add("trials", q)
                waves = stage_waves(
                    q, point.allocation.n_functions, self.platform
                )
                # Stage wall time: r epochs at the profiled per-epoch time
                # with network/compute jitter, serialized over concurrency
                # waves.
                time_noise = float(
                    rng.lognormal(0.0, self.platform.network_noise_sigma)
                )
                stage_jct = r * point.time_s * waves * time_noise
                cost_noise = rng.lognormal(
                    0.0, self.platform.compute_noise_sigma, size=q
                )
                stage_cost = float(r * point.cost_usd * cost_noise.sum())
                sync_s = r * point.time.sync_s * waves * time_noise
                if self.fault_injector is not None:
                    penalty = self.fault_injector.stage_penalty(
                        i, point.allocation.storage.value, total_jct, stage_jct
                    )
                    if penalty.extra_s > 0.0:
                        stage_jct += penalty.extra_s
                        sync_s += penalty.extra_s
                        if bus.enabled:
                            bus.emit(
                                "fault_injected", total_jct + stage_jct,
                                scope="tune", stage=i,
                                n_faults=penalty.n_transient
                                + (1 if penalty.throttled_s else 0),
                                overhead_s=penalty.extra_s,
                            )
                records.append(
                    StageRecord(
                        stage=i,
                        n_trials=q,
                        epochs_per_trial=r,
                        allocation=point.allocation,
                        jct_s=stage_jct,
                        cost_usd=stage_cost,
                        sync_s=sync_s,
                        waves=waves,
                    )
                )
                get_tracer().span(
                    "stage", "stage", total_jct, stage_jct, "stages",
                    stage=i, trials=q, epochs_per_trial=r, waves=waves,
                    allocation=point.allocation.describe(), cost_usd=stage_cost,
                )
                total_jct += stage_jct
                total_cost += stage_cost
                if self.kernel is not None:
                    from repro.kernel import Priority

                    self.kernel.schedule(
                        stage_jct, lambda: None, priority=Priority.SCHEDULER
                    )
                    self.kernel.run()
                if bus.enabled:
                    bus.emit(
                        "stage_done", total_jct, scope="tune",
                        stage=i, n_trials=q, epochs_per_trial=r,
                        jct_s=stage_jct, cost_usd=stage_cost,
                        allocation=point.allocation.describe(),
                    )
                if ts.enabled:
                    # Stage-boundary samples on the tuning job's clock:
                    # SHA's surviving-trial ladder, what each stage's
                    # synchronization cost, and the cumulative bill.
                    ts.sample("tune.survivors", total_jct, float(q))
                    ts.sample("tune.stage_sync_s", total_jct, sync_s)
                    ts.sample("tune.cost_usd", total_jct, total_cost)
                engine.run_stage()
        winner = engine.winner()
        extra: dict = {}
        if self.fault_injector is not None:
            extra["faults"] = self.fault_injector.ledger.summary()
        return TuningRunResult(
            jct_s=total_jct,
            cost_usd=total_cost,
            stages=records,
            winner=winner,
            scheduling_overhead_s=scheduling_overhead_s,
            extra=extra,
        )
