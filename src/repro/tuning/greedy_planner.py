"""Algorithm 1 — the greedy heuristic resource-partitioning planner.

The multiple-choice-knapsack formulation (Eq. 7-9 / 11) is NP-hard, so the
planner improves the optimal *static* plan greedily. With the objective O
(JCT for JCT-min-given-budget, cost for cost-min-given-QoS) and the traded
dimension S (cost resp. time):

1. **Warm start** — the best uniform plan over 𝒫 under the constraint;
   refinement is additionally multi-started from *every* feasible uniform
   plan (the paper's Remark only requires "no worse than static"; with the
   precomputed stage-contribution cache the extra starts cost microseconds
   and close most of the gap to the exact DP — see
   ``benchmarks/test_ablation_planner.py``).
2. **Recycle & reinvest** (Alg. 1 lines 2-14) — pick the single-stage move
   in the *S-freeing* direction with the best S freed per unit of O damage
   (recycling; for JCT-min this downgrades a stage to a cheaper point —
   early stages, whose q_i is large, win by construction), then repeatedly
   apply the *O-improving* move with the best marginal benefit (Eq. 10/12)
   while total S stays within the warm-start plan's spend. The recycled
   stage is excluded from reinvestment within the round so a round cannot
   simply undo itself.
3. **Spend the remainder** (lines 15-25) — keep applying the best
   O-improving moves (either ladder direction — concurrency waves make
   stage time non-monotone along 𝒫) until the constraint binds or
   improvements fall below δ; moves that violate the constraint enter a
   tabu set (A2') and are skipped.

Planner instrumentation (candidates evaluated, wall time) feeds the
scheduling-overhead experiment (Fig. 21a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConstraintError
from repro.analytical.pareto import ProfiledAllocation
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.profiling import profile_phase
from repro.profiling.clock import host_clock_s
from repro.tuning.plan import (
    Objective,
    PartitionPlan,
    PlanEvaluation,
    evaluate_plan,
    stage_waves,
)
from repro.tuning.sha import SHASpec, StageShape
from repro.tuning.static_planner import optimal_static_plan, static_plan
from repro.telemetry import get_registry
from repro.slo.events import get_event_bus


@dataclass
class PlannerStats:
    """Instrumentation for the scheduling-overhead experiment (Fig. 21a)."""

    candidates_evaluated: int = 0
    greedy_iterations: int = 0
    wall_time_s: float = 0.0


@dataclass
class PlannerResult:
    """A plan plus its predicted evaluation and instrumentation."""

    plan: PartitionPlan
    evaluation: PlanEvaluation
    static_evaluation: PlanEvaluation
    stats: PlannerStats
    feasible: bool = True


@dataclass
class GreedyHeuristicPlanner:
    """Plans per-stage allocations for SHA under a budget or QoS constraint.

    Attributes:
        delta: minimum relative objective improvement to keep iterating —
            the paper's stopping threshold δ.
        platform: platform config used to evaluate plans.
    """

    delta: float = 0.001
    platform: PlatformConfig = field(default_factory=lambda: DEFAULT_PLATFORM)

    # ------------------------------------------------------------------ helpers
    def _build_cache(self, ladder: list[ProfiledAllocation], spec: SHASpec) -> None:
        """Precompute each (stage, candidate)'s JCT/cost contribution.

        A stage's contribution depends only on its own allocation, so plan
        evaluation reduces to a sum of lookups — the difference between a
        sub-second and a 15-second planning pass at the paper's 16384-trial
        scale.
        """
        self._index = {p.allocation: j for j, p in enumerate(ladder)}
        self._stage_jct = []
        self._stage_cost = []
        for i in range(spec.n_stages):
            q = spec.trials_in_stage(i)
            r = spec.epochs_in_stage(i)
            jct_row = []
            cost_row = []
            for p in ladder:
                waves = stage_waves(q, p.allocation.n_functions, self.platform)
                jct_row.append(r * p.time_s * waves)
                cost_row.append(q * r * p.cost_usd)
            self._stage_jct.append(jct_row)
            self._stage_cost.append(cost_row)

    def _eval(self, plan: PartitionPlan, spec: SHASpec, stats: PlannerStats):
        stats.candidates_evaluated += 1
        jct = []
        cost = []
        for i, point in enumerate(plan.stages):
            j = self._index[point.allocation]
            jct.append(self._stage_jct[i][j])
            cost.append(self._stage_cost[i][j])
        return PlanEvaluation(
            jct_s=sum(jct),
            cost_usd=sum(cost),
            stage_jct_s=tuple(jct),
            stage_cost_usd=tuple(cost),
        )

    @staticmethod
    def _index_of(ladder: list[ProfiledAllocation], point: ProfiledAllocation) -> int:
        for i, p in enumerate(ladder):
            if p.allocation == point.allocation:
                return i
        raise ConstraintError("plan references an allocation outside the candidate set")

    def _neighbors(
        self,
        plan: PartitionPlan,
        ladder: list[ProfiledAllocation],
        direction: int,
        exclude: set[int] = frozenset(),
    ) -> list[tuple[int, PartitionPlan]]:
        """One-step single-stage moves along the cost-sorted ladder.

        ``direction=+1`` moves a stage to the next more expensive (faster)
        point, ``-1`` to the next cheaper one.
        """
        moves = []
        for i, point in enumerate(plan.stages):
            if i in exclude:
                continue
            j = self._index_of(ladder, point) + direction
            if 0 <= j < len(ladder):
                moves.append((i, plan.replace_stage(i, ladder[j])))
        return moves

    # -- objective / constraint plumbing -------------------------------------
    @staticmethod
    def _objective_value(ev: PlanEvaluation, objective: Objective) -> float:
        return ev.jct_s if objective is Objective.MIN_JCT_GIVEN_BUDGET else ev.cost_usd

    @staticmethod
    def _spend_value(ev: PlanEvaluation, objective: Objective) -> float:
        """The traded-away dimension S (cost for JCT-min, time for cost-min)."""
        return ev.cost_usd if objective is Objective.MIN_JCT_GIVEN_BUDGET else ev.jct_s

    @staticmethod
    def _within_constraint(
        ev: PlanEvaluation,
        objective: Objective,
        budget_usd: float | None,
        qos_s: float | None,
    ) -> bool:
        ok = True
        if budget_usd is not None:
            ok = ok and ev.cost_usd <= budget_usd
        if qos_s is not None:
            ok = ok and ev.jct_s <= qos_s
        if objective is Objective.MIN_JCT_GIVEN_BUDGET and budget_usd is None:
            raise ConstraintError("JCT minimization needs budget_usd")
        if objective is Objective.MIN_COST_GIVEN_QOS and qos_s is None:
            raise ConstraintError("cost minimization needs qos_s")
        return ok

    def _marginal_benefit(
        self, cur: PlanEvaluation, cand: PlanEvaluation, objective: Objective
    ) -> float:
        """Eq. (10)/(12): objective improvement per unit of extra spend.

        Moves that improve the objective *and* reduce spend (possible via
        concurrency-wave effects) get an infinite benefit — always take
        them first.
        """
        gain = self._objective_value(cur, objective) - self._objective_value(
            cand, objective
        )
        spend = self._spend_value(cand, objective) - self._spend_value(cur, objective)
        if gain <= 0:
            return -float("inf")
        if spend <= 0:
            return float("inf")
        return gain / spend

    def _recycle_benefit(
        self, cur: PlanEvaluation, cand: PlanEvaluation, objective: Objective
    ) -> float:
        """Spend freed per unit of objective damage (the recycling metric)."""
        freed = self._spend_value(cur, objective) - self._spend_value(cand, objective)
        damage = self._objective_value(cand, objective) - self._objective_value(
            cur, objective
        )
        if freed <= 0:
            return -float("inf")
        return freed / max(damage, 1e-12)

    # ------------------------------------------------------------------ planning
    def plan(
        self,
        candidates: list[ProfiledAllocation],
        spec: SHASpec,
        objective: Objective,
        budget_usd: float | None = None,
        qos_s: float | None = None,
    ) -> PlannerResult:
        """Run Algorithm 1 and return the partitioning plan.

        When no static plan satisfies the constraint, the closest-to-
        feasible static plan is returned with ``feasible=False``.
        """
        start = host_clock_s()
        stats = PlannerStats()
        with profile_phase("planner/plan"):
            ladder = sorted(candidates, key=lambda p: p.cost_usd)
            with profile_phase("planner/build_cache"):
                self._build_cache(ladder, spec)
            registry = get_registry()

            with profile_phase("planner/warm_start") as ph:
                warm = optimal_static_plan(
                    ladder, spec, objective, budget_usd=budget_usd, qos_s=qos_s,
                    platform=self.platform,
                )
                # The warm start enumerates every candidate as a uniform plan;
                # account for those evaluations (they dominate WO-pa's
                # overhead).
                stats.candidates_evaluated += len(ladder)
                warm_ev = self._eval(warm, spec, stats)
                feasible = self._within_constraint(
                    warm_ev, objective, budget_usd, qos_s
                )
                best, best_ev = warm, warm_ev
                starts = (
                    self._warm_starts(
                        warm, ladder, spec, objective, budget_usd, qos_s, stats
                    )
                    if feasible
                    else []
                )
                ph.add("candidates_evaluated", stats.candidates_evaluated)

            for start_plan in starts:
                cand, cand_ev = self._improve(
                    start_plan, ladder, spec, objective, budget_usd, qos_s, stats
                )
                if self._objective_value(cand_ev, objective) < self._objective_value(
                    best_ev, objective
                ):
                    best, best_ev = cand, cand_ev
        stats.wall_time_s = host_clock_s() - start
        registry.counter(
            "repro_planner_candidates_evaluated_total",
            "Plan evaluations performed by the knapsack heuristic",
        ).inc(stats.candidates_evaluated)
        registry.counter(
            "repro_planner_greedy_iterations_total",
            "Recycle/reinvest and spend-remainder rounds",
        ).inc(stats.greedy_iterations)
        registry.histogram(
            "repro_planner_wall_seconds",
            "Host wall-clock time per planning pass",
            buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
        ).observe(stats.wall_time_s)
        bus = get_event_bus()
        if bus.enabled:
            bus.emit(
                "plan_chosen", 0.0, scope="tune",
                n_stages=len(best.stages),
                predicted_jct_s=best_ev.jct_s,
                predicted_cost_usd=best_ev.cost_usd,
                feasible=feasible,
                candidates_evaluated=stats.candidates_evaluated,
            )
        return PlannerResult(
            plan=best,
            evaluation=best_ev,
            static_evaluation=warm_ev,
            stats=stats,
            feasible=feasible,
        )

    def _warm_starts(
        self,
        warm: PartitionPlan,
        ladder: list[ProfiledAllocation],
        spec: SHASpec,
        objective: Objective,
        budget_usd: float | None,
        qos_s: float | None,
        stats: PlannerStats,
    ) -> list[PartitionPlan]:
        """Every feasible uniform plan, deduplicated.

        Greedy refinement is a local search; multi-starting it from each
        point of 𝒫 (a few dozen starts, each refining in microseconds)
        closes most of the optimality gap against the exact DP at a cost
        that is still a small fraction of one cold start."""
        starts = [warm]
        seen = {tuple(p.allocation for p in warm.stages)}
        for point in ladder:
            plan = static_plan(point, spec)
            ev = self._eval(plan, spec, stats)
            if not self._within_constraint(ev, objective, budget_usd, qos_s):
                continue
            key = tuple(p.allocation for p in plan.stages)
            if key not in seen:
                seen.add(key)
                starts.append(plan)
        return starts

    def _improve(
        self,
        plan: PartitionPlan,
        ladder: list[ProfiledAllocation],
        spec: SHASpec,
        objective: Objective,
        budget_usd: float | None,
        qos_s: float | None,
        stats: PlannerStats,
    ) -> tuple[PartitionPlan, PlanEvaluation]:
        # Counter deltas credit each refinement phase with exactly the plan
        # evaluations it performed, so the per-frame "candidates_evaluated"
        # counters sum to stats.candidates_evaluated.
        with profile_phase("planner/recycle_reinvest") as ph:
            before = stats.candidates_evaluated
            ev = self._eval(plan, spec, stats)
            plan, ev = self._recycle_and_reinvest(
                plan, ev, ladder, spec, objective, budget_usd, qos_s, stats
            )
            ph.add("candidates_evaluated", stats.candidates_evaluated - before)
        with profile_phase("planner/spend_remainder") as ph:
            before = stats.candidates_evaluated
            result = self._spend_remainder(
                plan, ev, ladder, spec, objective, budget_usd, qos_s, stats
            )
            ph.add("candidates_evaluated", stats.candidates_evaluated - before)
        return result

    # -- phase 1: recycle & reinvest (Alg. 1 lines 2-14) ---------------------
    def _recycle_and_reinvest(
        self,
        best: PartitionPlan,
        best_ev: PlanEvaluation,
        ladder: list[ProfiledAllocation],
        spec: SHASpec,
        objective: Objective,
        budget_usd: float | None,
        qos_s: float | None,
        stats: PlannerStats,
    ) -> tuple[PartitionPlan, PlanEvaluation]:
        # Recycling frees the traded dimension S: cheaper points for
        # JCT-min (direction -1), faster points for cost-min (+1).
        recycle_dir = -1 if objective is Objective.MIN_JCT_GIVEN_BUDGET else +1
        spend_cap = self._spend_value(best_ev, objective)
        for _ in range(64):  # bounded outer loop; converges much earlier
            stats.greedy_iterations += 1
            scored = []
            for stage_idx, cand in self._neighbors(best, ladder, recycle_dir):
                cev = self._eval(cand, spec, stats)
                b = self._recycle_benefit(best_ev, cev, objective)
                if b > 0:
                    scored.append((b, stage_idx, cand, cev))
            if not scored:
                break
            _, recycled_stage, a_l, a_l_ev = max(scored, key=lambda s: s[0])
            exclude = {recycled_stage}
            while True:
                up_scored = []
                for _, cand in self._neighbors(a_l, ladder, -recycle_dir, exclude):
                    cev = self._eval(cand, spec, stats)
                    if self._spend_value(cev, objective) > spend_cap:
                        continue
                    b = self._marginal_benefit(a_l_ev, cev, objective)
                    if b > 0:
                        up_scored.append((b, cand, cev))
                if not up_scored:
                    break
                _, a_l, a_l_ev = max(up_scored, key=lambda s: s[0])
            improvement = self._objective_value(best_ev, objective) - (
                self._objective_value(a_l_ev, objective)
            )
            if improvement <= self.delta * abs(self._objective_value(best_ev, objective)):
                break
            if not self._within_constraint(a_l_ev, objective, budget_usd, qos_s):
                break
            best, best_ev = a_l, a_l_ev
        return best, best_ev

    # -- phase 2: spend the remaining headroom (Alg. 1 lines 15-25) ----------
    def _spend_remainder(
        self,
        best: PartitionPlan,
        best_ev: PlanEvaluation,
        ladder: list[ProfiledAllocation],
        spec: SHASpec,
        objective: Objective,
        budget_usd: float | None,
        qos_s: float | None,
        stats: PlannerStats,
    ) -> tuple[PartitionPlan, PlanEvaluation]:
        tabu: set[tuple[int, str]] = set()  # A2': moves that break the constraint
        stats.greedy_iterations += 1  # phase 2 counts as one estimation round
        for _ in range(512):
            # Phase 2 considers *every* (stage, candidate) replacement, not
            # just ladder neighbours: the boundary has cliffs (e.g. the
            # cheap DynamoDB tail vs the fast VM-PS cluster) that one-step
            # moves cannot cross, and the knapsack optimum routinely jumps
            # them.
            scored = []
            for stage_idx in range(len(best.stages)):
                current = best.stages[stage_idx]
                for point in ladder:
                    if point.allocation == current.allocation:
                        continue
                    key = (stage_idx, point.allocation.describe())
                    if key in tabu:
                        continue
                    cand = best.replace_stage(stage_idx, point)
                    cev = self._eval(cand, spec, stats)
                    if not self._within_constraint(
                        cev, objective, budget_usd, qos_s
                    ):
                        tabu.add(key)
                        continue
                    b = self._marginal_benefit(best_ev, cev, objective)
                    if b > 0:
                        scored.append((b, cand, cev))
            if not scored:
                break
            # Individual moves can be small, so phase 2 runs until no
            # strictly improving feasible move remains (δ governs the
            # coarser phase-1 rounds).
            _, cand, cev = max(scored, key=lambda s: s[0])
            best, best_ev = cand, cev
            tabu.clear()  # constraint headroom changed; retry old moves
        return best, best_ev
