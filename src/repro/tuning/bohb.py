"""BOHB-style model-based hyperparameter tuning over HyperBand brackets.

BOHB [20] replaces HyperBand's random configuration sampling with a
TPE-style density model: completed trials are split into "good" and "bad"
sets by score, each modelled with a kernel density estimate, and new
configurations are drawn to maximize the good/bad density ratio.

This module provides the sampler and a bracket runner that (a) seeds each
bracket's trials from the model and (b) partitions each bracket's stages
with CE-scaling's greedy planner — demonstrating the paper's claim that
its partitioning applies beyond plain SHA.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy.stats import gaussian_kde

from repro.common.errors import ValidationError
from repro.common.rng import stream_for
from repro.analytical.pareto import ProfiledAllocation
from repro.ml.curves import LossCurveSampler
from repro.ml.models import Workload
from repro.tuning.executor import TuningExecutor, TuningRunResult
from repro.tuning.greedy_planner import GreedyHeuristicPlanner
from repro.tuning.hyperband import BracketSpec, HyperBandSpec
from repro.tuning.plan import Objective
from repro.tuning.sha import SHAEngine, Trial


@dataclass
class TPESampler:
    """Tree-structured-Parzen-style sampler over (log lr, momentum).

    Observations are (config, score) pairs; the best ``gamma`` fraction
    forms the "good" KDE. New configs maximize good/bad density ratio over
    ``n_candidates`` random proposals. Falls back to the prior (log-uniform
    lr, uniform momentum) until enough observations exist.
    """

    seed: int = 0
    gamma: float = 0.25
    min_observations: int = 8
    n_candidates: int = 32

    def __post_init__(self) -> None:
        self._rng = stream_for(self.seed, "tpe")
        self._configs: list[tuple[float, float]] = []  # (log10 lr, momentum)
        self._scores: list[float] = []

    def observe(self, learning_rate: float, momentum: float, score: float) -> None:
        """Record a finished trial's score (higher is better)."""
        if learning_rate <= 0:
            raise ValidationError(f"learning_rate must be > 0, got {learning_rate}")
        self._configs.append((math.log10(learning_rate), momentum))
        self._scores.append(float(score))

    @property
    def n_observations(self) -> int:
        return len(self._scores)

    def _prior_sample(self) -> tuple[float, float]:
        return (
            float(10 ** self._rng.uniform(-5, -0.5)),
            float(self._rng.uniform(0.0, 0.99)),
        )

    def sample(self) -> tuple[float, float]:
        """A new (learning_rate, momentum) configuration."""
        if self.n_observations < self.min_observations:
            return self._prior_sample()
        data = np.asarray(self._configs)
        scores = np.asarray(self._scores)
        n_good = max(2, int(self.gamma * len(scores)))
        order = np.argsort(scores)[::-1]
        good, bad = data[order[:n_good]], data[order[n_good:]]
        if len(bad) < 2:
            return self._prior_sample()
        try:
            kde_good = gaussian_kde(good.T)
            kde_bad = gaussian_kde(bad.T)
        except (np.linalg.LinAlgError, ValueError):
            return self._prior_sample()
        proposals = kde_good.resample(self.n_candidates, seed=self._rng)
        ratios = kde_good(proposals) / np.maximum(kde_bad(proposals), 1e-12)
        log_lr, momentum = proposals[:, int(np.argmax(ratios))]
        log_lr = float(np.clip(log_lr, -5.0, -0.5))
        momentum = float(np.clip(momentum, 0.0, 0.99))
        return 10**log_lr, momentum


class BOHBEngine(SHAEngine):
    """An SHA engine whose trial configurations come from a TPE sampler."""

    def __init__(
        self,
        spec: BracketSpec,
        workload: Workload,
        sampler: TPESampler,
        seed: int = 0,
    ) -> None:
        self._sampler_model = sampler  # must exist before _make_trial runs
        super().__init__(spec, workload, seed=seed)

    def _make_trial(self, index: int) -> Trial:
        lr, momentum = self._sampler_model.sample()
        opt_lr = self.workload.learning_rate
        lr_dist = abs(math.log10(lr) - math.log10(opt_lr))
        mom_dist = abs(momentum - 0.9)
        quality = float(
            np.clip(math.exp(-0.6 * lr_dist - 0.8 * mom_dist), 0.05, 1.0)
        )
        params = self.workload.curve_params()
        sampler = LossCurveSampler(
            params,
            seed=self.seed,
            run_label=("bohb-trial", self.spec.bracket_index, index),
            anchor_target=self.workload.target_loss,
        )
        sampler.alpha *= quality
        return Trial(
            index=index,
            learning_rate=lr,
            momentum=momentum,
            quality=quality,
            sampler=sampler,
        )

    def report_to_sampler(self) -> None:
        """Feed every scored trial back into the TPE model."""
        for t in self.trials:
            if t.losses:
                self._sampler_model.observe(t.learning_rate, t.momentum, t.score)


@dataclass
class BOHBResult:
    """Outcome of a full BOHB run."""

    jct_s: float
    cost_usd: float
    best_trial: Trial
    bracket_results: list[TuningRunResult] = field(default_factory=list)


@dataclass
class BOHBRunner:
    """Runs BOHB with CE-scaling's per-bracket resource partitioning.

    The total budget is split across brackets proportionally to their
    trial-epoch volume; each bracket's stages are then partitioned by the
    greedy heuristic planner, exactly as for plain SHA.
    """

    workload: Workload
    spec: HyperBandSpec
    candidates: list[ProfiledAllocation]
    budget_usd: float
    seed: int = 0
    delta: float = 0.001

    def run(self) -> BOHBResult:
        sampler = TPESampler(seed=self.seed)
        planner = GreedyHeuristicPlanner(delta=self.delta)
        brackets = self.spec.brackets()
        volumes = [b.total_trial_epochs() for b in brackets]
        total_volume = sum(volumes)
        jct = 0.0
        cost = 0.0
        best: Trial | None = None
        results = []
        for bracket, volume in zip(brackets, volumes):
            share = self.budget_usd * volume / total_volume
            planned = planner.plan(
                self.candidates,
                bracket,
                Objective.MIN_JCT_GIVEN_BUDGET,
                budget_usd=share,
            )
            engine = BOHBEngine(bracket, self.workload, sampler, seed=self.seed)
            executor = TuningExecutor(
                workload=self.workload, spec=bracket, seed=self.seed
            )
            # The executor drives resources and the BOHB engine's learning
            # side together: model-sampled configs, planned partitions.
            result = executor.run(planned.plan, engine=engine)
            engine.report_to_sampler()
            winner = result.winner
            jct += result.jct_s
            cost += result.cost_usd
            results.append(result)
            if best is None or winner.score > best.score:
                best = winner
        return BOHBResult(
            jct_s=jct, cost_usd=cost, best_trial=best, bracket_results=results
        )
