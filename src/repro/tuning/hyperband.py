"""HyperBand brackets and per-bracket resource partitioning.

The paper notes (§II-A) that other early-stopping tuners — HyperBand's
brackets, BOHB — "share the same idea of repeatedly terminating poorly
performing trials", so CE-scaling's partitioning applies to them. This
module makes that concrete: a :class:`BracketSpec` exposes the same
stage-shape protocol as :class:`~repro.tuning.sha.SHASpec` (``n_trials``,
``n_stages``, ``trials_in_stage``, ``epochs_in_stage``), so the greedy
planner, plan evaluation, and the tuning executor all work on HyperBand
brackets unchanged.

HyperBand(R, eta) runs ``s_max + 1`` brackets; bracket s starts
``n = ceil((s_max + 1) / (s + 1) * eta^s)`` trials at ``r = R * eta^-s``
epochs and successively halves, multiplying the per-stage epoch allowance
by eta (Li et al., "Hyperband", JMLR 2018).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ValidationError


@dataclass(frozen=True, slots=True)
class BracketSpec:
    """One HyperBand bracket, stage-shape compatible with SHASpec.

    Attributes:
        n_trials: trials entering the first stage.
        reduction_factor: eta.
        initial_epochs: epochs per trial in the first stage (grows by eta
            each stage, unlike SHA's constant allowance).
        bracket_index: which HyperBand bracket this is (for reporting).
    """

    n_trials: int
    reduction_factor: int
    initial_epochs: int
    bracket_index: int = 0
    # Rung cap: HyperBand's bracket s has exactly s+1 rungs, so the final
    # rung's per-trial epochs never exceed R. 0 = derive from n_trials.
    max_rungs: int = 0

    def __post_init__(self) -> None:
        if self.n_trials < 2:
            raise ValidationError(f"n_trials must be >= 2, got {self.n_trials}")
        if self.reduction_factor < 2:
            raise ValidationError(
                f"reduction_factor must be >= 2, got {self.reduction_factor}"
            )
        if self.initial_epochs < 1:
            raise ValidationError(
                f"initial_epochs must be >= 1, got {self.initial_epochs}"
            )

    @property
    def n_stages(self) -> int:
        derived = max(1, int(math.floor(math.log(self.n_trials, self.reduction_factor))))
        if self.max_rungs > 0:
            return min(derived, self.max_rungs)
        return derived

    def trials_in_stage(self, stage: int) -> int:
        if not 0 <= stage < self.n_stages:
            raise ValidationError(f"stage must be in [0, {self.n_stages}), got {stage}")
        return max(2, self.n_trials // self.reduction_factor**stage)

    def epochs_in_stage(self, stage: int) -> int:
        if not 0 <= stage < self.n_stages:
            raise ValidationError(f"stage must be in [0, {self.n_stages}), got {stage}")
        return self.initial_epochs * self.reduction_factor**stage

    def total_trial_epochs(self) -> int:
        return sum(
            self.trials_in_stage(i) * self.epochs_in_stage(i)
            for i in range(self.n_stages)
        )


@dataclass(frozen=True, slots=True)
class HyperBandSpec:
    """A full HyperBand run: max per-trial resource R and eta."""

    max_epochs_per_trial: int  # R
    reduction_factor: int = 3  # eta (HyperBand's default is 3)

    def __post_init__(self) -> None:
        if self.max_epochs_per_trial < 1:
            raise ValidationError(
                f"max_epochs_per_trial must be >= 1, got {self.max_epochs_per_trial}"
            )
        if self.reduction_factor < 2:
            raise ValidationError(
                f"reduction_factor must be >= 2, got {self.reduction_factor}"
            )

    @property
    def s_max(self) -> int:
        return int(math.floor(math.log(self.max_epochs_per_trial, self.reduction_factor)))

    def brackets(self) -> list[BracketSpec]:
        """The s_max+1 brackets, most exploratory (most trials) first."""
        eta = self.reduction_factor
        r_max = self.max_epochs_per_trial
        out = []
        for s in range(self.s_max, -1, -1):
            n = int(math.ceil((self.s_max + 1) / (s + 1) * eta**s))
            r = max(1, int(r_max * eta**-s))
            if n < 2:
                n = 2
            out.append(
                BracketSpec(
                    n_trials=n,
                    reduction_factor=eta,
                    initial_epochs=r,
                    bracket_index=s,
                    max_rungs=s + 1,
                )
            )
        return out

    def total_trial_epochs(self) -> int:
        return sum(b.total_trial_epochs() for b in self.brackets())
