"""ASHA — asynchronous successive halving (Li et al. [19]).

Synchronous SHA waits for every trial in a stage before halving; ASHA
promotes a trial to the next *rung* the moment it ranks in the top 1/eta of
the results seen so far at its rung. No barriers: stragglers cannot stall
the run, at the price of occasionally promoting a trial a synchronous
ranking would have cut.

The paper evaluates synchronous SHA but cites ASHA among the early-stopping
tuners its partitioning generalizes to; this module provides the engine so
rung-level resource planning can be studied on it (each rung maps to a
"stage" for the planner, exactly like a bracket).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.rng import stream_for
from repro.ml.curves import LossCurveSampler
from repro.ml.models import Workload
from repro.tuning.sha import Trial


@dataclass(frozen=True, slots=True)
class ASHASpec:
    """Shape of an ASHA run.

    Attributes:
        max_rung: highest rung index (a trial at rung r has trained
            ``epochs_per_rung * eta^r`` epochs in total).
        reduction_factor: eta.
        epochs_per_rung: epochs between rung evaluations at rung 0.
        n_trials: total trials the run will eventually sample.
    """

    n_trials: int
    max_rung: int = 4
    reduction_factor: int = 2
    epochs_per_rung: int = 1

    def __post_init__(self) -> None:
        if self.n_trials < 2:
            raise ValidationError(f"n_trials must be >= 2, got {self.n_trials}")
        if self.max_rung < 1:
            raise ValidationError(f"max_rung must be >= 1, got {self.max_rung}")
        if self.reduction_factor < 2:
            raise ValidationError(
                f"reduction_factor must be >= 2, got {self.reduction_factor}"
            )

    def epochs_to_reach(self, rung: int) -> int:
        """Cumulative epochs a trial has trained when it reaches ``rung``."""
        if not 0 <= rung <= self.max_rung:
            raise ValidationError(f"rung must be in [0, {self.max_rung}]")
        return sum(
            self.epochs_per_rung * self.reduction_factor**r for r in range(rung + 1)
        )


@dataclass
class ASHAEngine:
    """Event-driven ASHA: one trial advances per step, no barriers."""

    spec: ASHASpec
    workload: Workload
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = stream_for(self.seed, "asha", self.workload.name)
        self.trials: list[Trial] = []
        self.rung_of: dict[int, int] = {}
        # Scores recorded at each rung, used for promotion decisions.
        self.rung_scores: dict[int, list[tuple[float, int]]] = {
            r: [] for r in range(self.spec.max_rung + 1)
        }
        self.completed: list[int] = []
        self.steps = 0

    def _sample_trial(self) -> Trial:
        index = len(self.trials)
        lr = float(10 ** self._rng.uniform(-5, -0.5))
        momentum = float(self._rng.uniform(0.0, 0.99))
        lr_dist = abs(math.log10(lr) - math.log10(self.workload.learning_rate))
        mom_dist = abs(momentum - 0.9)
        quality = float(
            min(1.0, max(0.05, math.exp(-0.6 * lr_dist - 0.8 * mom_dist)))
        )
        params = self.workload.curve_params()
        sampler = LossCurveSampler(
            params,
            seed=self.seed,
            run_label=("asha-trial", index),
            anchor_target=self.workload.target_loss,
        )
        sampler.alpha *= quality
        trial = Trial(
            index=index,
            learning_rate=lr,
            momentum=momentum,
            quality=quality,
            sampler=sampler,
        )
        self.trials.append(trial)
        self.rung_of[index] = -1  # not yet evaluated at rung 0
        return trial

    def _promotable(self) -> int | None:
        """A trial whose rung-score ranks in the top 1/eta of its rung."""
        for rung in range(self.spec.max_rung - 1, -1, -1):
            scores = self.rung_scores[rung]
            if not scores:
                continue
            n_promote = len(scores) // self.spec.reduction_factor
            if n_promote == 0:
                continue
            top = sorted(scores, reverse=True)[:n_promote]
            for score, idx in top:
                if self.rung_of[idx] == rung and self.trials[idx].alive:
                    return idx
        return None

    def step(self) -> Trial:
        """One scheduling decision: promote if possible, else grow a trial.

        Returns the trial that ran.
        """
        self.steps += 1
        idx = self._promotable()
        if idx is None:
            if len(self.trials) < self.spec.n_trials:
                trial = self._sample_trial()
                idx = trial.index
            else:
                # Everything sampled: advance the best currently waiting.
                waiting = [
                    i for i, t in enumerate(self.trials)
                    if t.alive and self.rung_of[i] < self.spec.max_rung
                ]
                if not waiting:
                    raise ValidationError("ASHA run already finished")
                idx = max(waiting, key=lambda i: self.trials[i].score)
        trial = self.trials[idx]
        next_rung = self.rung_of[idx] + 1
        epochs = self.spec.epochs_per_rung * self.spec.reduction_factor**next_rung
        trial.train_epochs(epochs)
        self.rung_of[idx] = next_rung
        self.rung_scores[next_rung].append((trial.score, idx))
        if next_rung == self.spec.max_rung:
            self.completed.append(idx)
        return trial

    @property
    def finished(self) -> bool:
        if len(self.trials) < self.spec.n_trials:
            return False
        return all(
            not t.alive or self.rung_of[i] >= self.spec.max_rung
            for i, t in enumerate(self.trials)
        ) or len(self.completed) >= max(
            1, self.spec.n_trials // self.spec.reduction_factor**self.spec.max_rung
        )

    def run(self, max_steps: int = 100_000) -> Trial:
        """Run until enough trials complete the top rung; return the best."""
        while not self.finished and self.steps < max_steps:
            self.step()
        if not self.completed:
            raise ValidationError("ASHA made no trial reach the top rung")
        return max((self.trials[i] for i in self.completed), key=lambda t: t.score)
