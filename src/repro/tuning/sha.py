"""Successive Halving (SHA) hyperparameter tuning (paper §II-A, Fig. 2).

SHA runs trials in stages: every trial trains ``r_i`` epochs per stage, the
trials are ranked by validation score, and the bottom ``1 - 1/eta`` fraction
is terminated. The paper's headline configuration is 16384 trials with a
reduction factor of 2 (14 stages, 2 epochs per stage); experiments here
default to a scaled version with identical structure.

Each trial owns a hyperparameter configuration (learning rate, momentum)
whose distance from a hidden optimum determines its convergence speed — so
SHA's ranking has signal, early stages genuinely weed out bad configs, and
the "winner" is meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import stream_for
from repro.ml.curves import LossCurveSampler
from repro.ml.models import Workload


@runtime_checkable
class StageShape(Protocol):
    """The stage-shape protocol the planner/executor/evaluator consume.

    Both :class:`SHASpec` and HyperBand's
    :class:`~repro.tuning.hyperband.BracketSpec` satisfy it, which is what
    lets Algorithm 1 partition any early-stopping tuner's stages.
    """

    n_trials: int

    @property
    def n_stages(self) -> int: ...

    def trials_in_stage(self, stage: int) -> int: ...

    def epochs_in_stage(self, stage: int) -> int: ...

    def total_trial_epochs(self) -> int: ...


@dataclass(frozen=True, slots=True)
class SHASpec:
    """Shape of a Successive Halving run.

    Attributes:
        n_trials: trial count in the first stage.
        reduction_factor: eta — the survivor fraction between stages is 1/eta.
        epochs_per_stage: r_i (the paper uses a constant 2).
    """

    n_trials: int
    reduction_factor: int = 2
    epochs_per_stage: int = 2

    def __post_init__(self) -> None:
        if self.n_trials < 2:
            raise ValidationError(f"n_trials must be >= 2, got {self.n_trials}")
        if self.reduction_factor < 2:
            raise ValidationError(
                f"reduction_factor must be >= 2, got {self.reduction_factor}"
            )
        if self.epochs_per_stage < 1:
            raise ValidationError(
                f"epochs_per_stage must be >= 1, got {self.epochs_per_stage}"
            )

    @property
    def n_stages(self) -> int:
        """Stages until <= reduction_factor trials remain, then one winner pick."""
        return max(1, int(math.floor(math.log(self.n_trials, self.reduction_factor))))

    def trials_in_stage(self, stage: int) -> int:
        """q_i: surviving trials entering stage ``stage`` (0-based)."""
        if not 0 <= stage < self.n_stages:
            raise ValidationError(f"stage must be in [0, {self.n_stages}), got {stage}")
        return max(2, self.n_trials // self.reduction_factor**stage)

    def epochs_in_stage(self, stage: int) -> int:
        """r_i: epochs each surviving trial trains during stage ``stage``."""
        if not 0 <= stage < self.n_stages:
            raise ValidationError(f"stage must be in [0, {self.n_stages}), got {stage}")
        return self.epochs_per_stage

    def total_trial_epochs(self) -> int:
        """Σ q_i * r_i — total epoch-trials executed (the cost driver)."""
        return sum(
            self.trials_in_stage(i) * self.epochs_in_stage(i)
            for i in range(self.n_stages)
        )

    @staticmethod
    def paper_headline() -> "SHASpec":
        """The paper's §IV-B configuration: 16384 trials, eta=2, 2 epochs."""
        return SHASpec(n_trials=16384, reduction_factor=2, epochs_per_stage=2)


@dataclass(slots=True)
class Trial:
    """One hyperparameter configuration being tuned."""

    index: int
    learning_rate: float
    momentum: float
    quality: float  # in (0, 1]; 1 = at the hidden optimum
    sampler: LossCurveSampler = field(repr=False)
    losses: list[float] = field(default_factory=list)
    alive: bool = True
    epochs_trained: int = 0

    @property
    def score(self) -> float:
        """Validation score used for ranking (higher = better)."""
        return -self.losses[-1] if self.losses else -float("inf")

    def train_epochs(self, n: int) -> None:
        """Advance the trial by ``n`` epochs."""
        for _ in range(n):
            self.losses.append(self.sampler.next_loss())
        self.epochs_trained += n


class SHAEngine:
    """Drives a Successive Halving run over simulated trials.

    The engine owns only the *learning* side (trial losses, rankings,
    terminations); the *resource* side (how long a stage takes, what it
    costs) lives in :mod:`repro.tuning.executor`.
    """

    def __init__(self, spec: SHASpec, workload: Workload, seed: int = 0) -> None:
        self.spec = spec
        self.workload = workload
        self.seed = seed
        self._rng = stream_for(seed, "sha", workload.name)
        self.trials = [self._make_trial(i) for i in range(spec.n_trials)]
        self.stage = 0

    def _make_trial(self, index: int) -> Trial:
        """Sample a hyperparameter config and derive its convergence quality.

        Quality decays with log-distance from a hidden optimal learning rate
        and distance from an optimal momentum; the trial's loss curve decays
        ``quality`` times as fast as the workload's nominal curve.
        """
        rng = self._rng
        lr = float(10 ** rng.uniform(-5, -0.5))
        momentum = float(rng.uniform(0.0, 0.99))
        opt_lr = self.workload.learning_rate
        lr_dist = abs(math.log10(lr) - math.log10(opt_lr))
        mom_dist = abs(momentum - 0.9)
        quality = float(np.clip(math.exp(-0.6 * lr_dist - 0.8 * mom_dist), 0.05, 1.0))
        params = self.workload.curve_params()
        sampler = LossCurveSampler(
            params,
            seed=self.seed,
            run_label=("trial", index),
            anchor_target=self.workload.target_loss,
        )
        sampler.alpha *= quality  # slower decay for poor configs
        return Trial(
            index=index,
            learning_rate=lr,
            momentum=momentum,
            quality=quality,
            sampler=sampler,
        )

    @property
    def alive_trials(self) -> list[Trial]:
        return [t for t in self.trials if t.alive]

    @property
    def finished(self) -> bool:
        return self.stage >= self.spec.n_stages

    def run_stage(self) -> list[Trial]:
        """Train survivors for this stage's epochs, halve, advance.

        Returns the trials that were *terminated* at the end of the stage.
        """
        if self.finished:
            raise ValidationError("SHA run already finished")
        survivors = self.alive_trials
        r = self.spec.epochs_in_stage(self.stage)
        for t in survivors:
            t.train_epochs(r)
        self.stage += 1
        if self.stage >= self.spec.n_stages:
            keep = 1
        else:
            keep = self.spec.trials_in_stage(self.stage)
        ranked = sorted(survivors, key=lambda t: t.score, reverse=True)
        terminated = ranked[keep:]
        for t in terminated:
            t.alive = False
        return terminated

    def winner(self) -> Trial:
        """The surviving trial after the final stage."""
        if not self.finished:
            raise ValidationError("SHA run has not finished yet")
        alive = self.alive_trials
        return max(alive, key=lambda t: t.score)

    def run_to_completion(self) -> Trial:
        """Run every remaining stage and return the winner."""
        while not self.finished:
            self.run_stage()
        return self.winner()
