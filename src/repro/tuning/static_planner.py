"""Static resource-partitioning baselines (paper §II-C1, §IV-B).

* :func:`optimal_static_plan` — the warm start of Algorithm 1: enumerate 𝒫,
  assign the same θ to every stage, return the best feasible plan under the
  constraint (this is also how the LambdaML/Siren "static" baselines are
  realized once their greedy scheduler is removed).
* :func:`even_budget_plan` — the cluster-style "Fixed" baseline: the budget
  is split evenly across stages and across trials within a stage, so early
  stages (many trials) starve — the paper's resource-competition failure.
"""

from __future__ import annotations

from repro.common.errors import ConstraintError
from repro.analytical.pareto import ProfiledAllocation
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.tuning.plan import Objective, PartitionPlan, evaluate_plan
from repro.tuning.sha import SHASpec


def static_plan(point: ProfiledAllocation, spec: SHASpec) -> PartitionPlan:
    """The uniform plan assigning ``point`` to all stages."""
    return PartitionPlan.uniform(point, spec.n_stages)


def optimal_static_plan(
    candidates: list[ProfiledAllocation],
    spec: SHASpec,
    objective: Objective,
    budget_usd: float | None = None,
    qos_s: float | None = None,
    platform: PlatformConfig = DEFAULT_PLATFORM,
) -> PartitionPlan:
    """Best uniform plan under the constraint.

    For JCT-minimization the constraint is ``budget_usd``; for
    cost-minimization it is the QoS deadline ``qos_s``. When no uniform
    plan satisfies the constraint, the closest-to-feasible plan is returned
    (static baselines in the paper do run — they just violate constraints).
    """
    best = None
    best_key = None
    fallback = None
    fallback_violation = float("inf")
    for point in candidates:
        plan = static_plan(point, spec)
        ev = evaluate_plan(plan, spec, platform)
        if objective is Objective.MIN_JCT_GIVEN_BUDGET:
            if budget_usd is None:
                raise ConstraintError("JCT minimization needs a budget")
            feasible = ev.cost_usd <= budget_usd
            key = ev.jct_s
            violation = ev.cost_usd - budget_usd
        else:
            if qos_s is None:
                raise ConstraintError("cost minimization needs a QoS deadline")
            feasible = ev.jct_s <= qos_s
            key = ev.cost_usd
            violation = ev.jct_s - qos_s
        if feasible and (best_key is None or key < best_key):
            best, best_key = plan, key
        if not feasible and violation < fallback_violation:
            fallback, fallback_violation = plan, violation
    if best is not None:
        return best
    if fallback is not None:
        return fallback
    raise ConstraintError("no candidate allocations to build a static plan from")


def even_budget_plan(
    candidates: list[ProfiledAllocation],
    spec: SHASpec,
    budget_usd: float,
    platform: PlatformConfig = DEFAULT_PLATFORM,
) -> PartitionPlan:
    """The "Fixed" cluster-style baseline.

    Each stage receives ``budget / n_stages`` dollars, shared by that
    stage's q_i trials over r_i epochs; every stage independently picks the
    fastest candidate whose per-epoch cost fits its per-trial-epoch share.
    Early stages, with exponentially more trials, get starved into the
    cheapest (slowest) allocations — the paper's Fig. 3/11 competition
    effect.
    """
    per_stage_budget = budget_usd / spec.n_stages
    stages = []
    cheapest = min(candidates, key=lambda p: p.cost_usd)
    for i in range(spec.n_stages):
        q = spec.trials_in_stage(i)
        r = spec.epochs_in_stage(i)
        share = per_stage_budget / (q * r)  # per-epoch dollars for one trial
        affordable = [p for p in candidates if p.cost_usd <= share]
        stages.append(
            min(affordable, key=lambda p: p.time_s) if affordable else cheapest
        )
    return PartitionPlan(tuple(stages))
