"""Flamegraph and Chrome-trace exporters for profiler captures.

* :func:`to_collapsed` — the collapsed-stack format consumed by inferno
  (``inferno-flamegraph``), Brendan Gregg's ``flamegraph.pl`` and
  speedscope: one line per call path, ``a;b;c <microseconds>``, weighted
  by *self* time so stack depth renders correctly.
* :func:`profiler_chrome_events` / :func:`augment_chrome_trace` — profiling
  frames as Chrome trace-event spans on their own process (pid 2, host
  time), merged into the trace the telemetry ``--trace`` flag writes so
  Perfetto shows simulated spans and host-time profiling frames side by
  side.
"""

from __future__ import annotations

import json

from repro.profiling.capture import PATH_SEP
from repro.profiling.core import Profiler

#: Chrome-trace process id for profiling frames (pid 1 is the simulation).
PROFILER_PID = 2


def to_collapsed(payload: dict) -> str:
    """Collapsed-stack flamegraph text for a ``repro-profile/v1`` capture.

    Lines are sorted by path so repeated exports of the same capture are
    byte-identical; weights are integer microseconds of self time (frames
    rounding to 0 µs are kept — they still document the call path).
    """
    lines = []
    for frame in sorted(payload["frames"], key=lambda f: f["path"]):
        weight = int(round(frame["self_s"] * 1e6))
        lines.append(f"{frame['path']} {weight}")
    return "\n".join(lines) + ("\n" if lines else "")


def profiler_chrome_events(profiler: Profiler) -> list[dict]:
    """Chrome trace events ('X' spans + 'M' metadata) for raw frame entries.

    Timestamps are host microseconds since the profiler was created — a
    different timebase than the simulation's pid-1 spans, which is exactly
    why the frames live on their own process row.
    """
    depth = {}
    events = []
    for path, start_s, duration_s in sorted(profiler.events):
        depth.setdefault(path, len(path))
        events.append(
            {
                "name": path[-1],
                "cat": "profiling",
                "ph": "X",
                "ts": start_s * 1e6,
                "dur": duration_s * 1e6,
                "pid": PROFILER_PID,
                "tid": 1,
                "args": {"path": PATH_SEP.join(path)},
            }
        )
    if not events:
        return []
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PROFILER_PID,
            "args": {"name": "profiler (host time)"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": PROFILER_PID,
            "tid": 1,
            "args": {"name": "frames"},
        },
    ]
    return meta + events


def augment_chrome_trace(trace_text: str, profiler: Profiler) -> str:
    """Merge profiling frames into an existing Chrome-trace JSON document."""
    doc = json.loads(trace_text)
    doc.setdefault("traceEvents", []).extend(profiler_chrome_events(profiler))
    return json.dumps(doc)
