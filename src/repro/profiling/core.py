"""The frame-stack profiler: phases, aggregation, counter attribution.

A :class:`Profiler` maintains a stack of named *phases*; entering a phase
pushes its name, leaving it pops and folds the elapsed host time into the
aggregate for the full call *path* (the tuple of open phase names). The
same phase name reached through different parents therefore aggregates
separately — ``planner/plan;planner/spend_remainder`` is a different row
than a hypothetical top-level ``planner/spend_remainder`` — which is what
lets a capture say *which* caller owns the time.

Attribution: code inside a phase can credit counters to it
(``ph.add("candidates_evaluated", n)``), so a capture carries work rates
(candidates/sec) per call-path, not just per process.

Like the telemetry collectors, the process-global default is a
:class:`NullProfiler`; instrumented hot paths pay one attribute check when
profiling is off. The profiler is strictly observational — it never
consumes randomness and never branches simulation logic.
"""

from __future__ import annotations

import tracemalloc
from typing import Callable

from repro.profiling.clock import host_clock_s

#: Keep at most this many raw frame-entry events (for Chrome-trace
#: augmentation); aggregation is unaffected when the cap is hit.
DEFAULT_MAX_EVENTS = 20_000

#: Call path used when a counter is credited with no phase open.
UNATTRIBUTED = ("(unattributed)",)


class FrameStat:
    """Aggregate for one call path: calls, inclusive time, counters."""

    __slots__ = ("n_calls", "total_s", "counters", "peak_bytes")

    def __init__(self) -> None:
        self.n_calls = 0
        self.total_s = 0.0
        self.counters: dict[str, float] = {}
        self.peak_bytes = 0

    def add_counter(self, name: str, amount: float) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount


class _Phase:
    """Context manager for one frame entry on a live profiler."""

    __slots__ = ("_profiler", "_name", "_path", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Phase":
        p = self._profiler
        p._stack.append(self._name)
        self._path = tuple(p._stack)
        self._start = p.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        p = self._profiler
        duration = p.clock() - self._start
        stat = p._frame(self._path)
        stat.n_calls += 1
        stat.total_s += duration
        if p.sample_memory and tracemalloc.is_tracing():
            stat.peak_bytes = max(
                stat.peak_bytes, tracemalloc.get_traced_memory()[1]
            )
        if len(p.events) < p.max_events:
            p.events.append((self._path, self._start - p._t0, duration))
        else:
            p.dropped_events += 1
        p._stack.pop()
        return False

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Credit ``amount`` of ``counter`` to this frame's call path."""
        self._profiler._frame(self._path).add_counter(counter, float(amount))


class _NullPhase:
    """Shared no-op phase handed out when profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, counter: str, amount: float = 1.0) -> None:
        pass


NULL_PHASE = _NullPhase()


class Profiler:
    """Deterministic phase/frame profiler (single-threaded).

    Attributes:
        clock: host-seconds source (defaults to the sanctioned
            :func:`repro.profiling.clock.host_clock_s`; tests inject a
            fake for exact arithmetic).
        sample_memory: when True, records the tracemalloc peak observed at
            each frame exit (``tracemalloc`` is started if needed and
            stopped again by :meth:`close`). Best-effort attribution — the
            peak is process-wide, so a frame's number means "the process
            peaked at X bytes while (or before) this frame ran".
        max_events: cap on raw frame-entry events kept for Chrome-trace
            augmentation; overflow only increments ``dropped_events``.
    """

    def __init__(
        self,
        clock: Callable[[], float] = host_clock_s,
        sample_memory: bool = False,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        self.clock = clock
        self.sample_memory = sample_memory
        self.max_events = max_events
        self.frames: dict[tuple[str, ...], FrameStat] = {}
        self.events: list[tuple[tuple[str, ...], float, float]] = []
        self.dropped_events = 0
        self._stack: list[str] = []
        self._started_tracemalloc = False
        if sample_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._t0 = self.clock()

    @property
    def enabled(self) -> bool:
        return True

    def phase(self, name: str) -> _Phase:
        """A context manager timing one frame named ``name``."""
        return _Phase(self, name)

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Credit ``amount`` of ``counter`` to the innermost open frame."""
        path = tuple(self._stack) if self._stack else UNATTRIBUTED
        self._frame(path).add_counter(counter, float(amount))

    def close(self) -> None:
        """Release resources (stops tracemalloc if this profiler started it)."""
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False

    # ------------------------------------------------------------------ internals
    def _frame(self, path: tuple[str, ...]) -> FrameStat:
        stat = self.frames.get(path)
        if stat is None:
            stat = self.frames[path] = FrameStat()
        return stat


class NullProfiler:
    """The default profiler: does nothing, costs one attribute check."""

    frames: dict[tuple[str, ...], FrameStat] = {}
    events: list[tuple[tuple[str, ...], float, float]] = []
    dropped_events = 0
    sample_memory = False

    @property
    def enabled(self) -> bool:
        return False

    def phase(self, name: str) -> _NullPhase:
        return NULL_PHASE

    def add(self, counter: str, amount: float = 1.0) -> None:
        pass

    def close(self) -> None:
        pass
