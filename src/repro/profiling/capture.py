"""The versioned ``repro-profile/v1`` capture: build, save, load, render.

A capture is the byte-stable JSON form of one profiler's aggregates —
frames sorted by call path with inclusive/self time, call counts and
attributed counters, plus document totals. Frame *timings* are host
wall-clock and therefore machine-dependent; everything else (paths, call
counts, counters, ordering) is deterministic for a fixed (workload, seed),
which is what makes two captures diffable (``repro profile --diff``).
"""

from __future__ import annotations

import json

from repro.common.errors import ValidationError
from repro.common.meta import coerce_meta
from repro.profiling.core import Profiler

JSON_SCHEMA = "repro-profile/v1"

#: Top-level keys — must match the REP006 registry entry in
#: ``repro.analysis.rules.schema.SCHEMA_KEYS``.
_TOP_KEYS = frozenset({"schema", "meta", "frames", "totals"})

_FRAME_KEYS = frozenset(
    {"path", "depth", "n_calls", "total_s", "self_s", "counters"}
)

PATH_SEP = ";"


def capture_payload(profiler: Profiler, meta: dict | None = None) -> dict:
    """The ``repro-profile/v1`` document for ``profiler``'s aggregates."""
    stats = profiler.frames
    child_time: dict[tuple[str, ...], float] = {path: 0.0 for path in stats}
    for path, stat in stats.items():
        parent = path[:-1]
        if parent in child_time:
            child_time[parent] += stat.total_s
    frames = []
    for path in sorted(stats):
        stat = stats[path]
        frame = {
            "path": PATH_SEP.join(path),
            "depth": len(path),
            "n_calls": stat.n_calls,
            "total_s": round(stat.total_s, 9),
            "self_s": round(max(0.0, stat.total_s - child_time[path]), 9),
            "counters": {
                name: stat.counters[name] for name in sorted(stat.counters)
            },
        }
        if profiler.sample_memory:
            frame["peak_bytes"] = stat.peak_bytes
        frames.append(frame)
    top_wall = sum(f["total_s"] for f in frames if f["depth"] == 1)
    return {
        "schema": JSON_SCHEMA,
        "meta": coerce_meta(meta),
        "frames": frames,
        "totals": {
            "wall_s": round(top_wall, 9),
            "n_frames": len(frames),
            "n_calls": sum(f["n_calls"] for f in frames),
            "dropped_events": profiler.dropped_events,
        },
    }


def to_json(payload: dict) -> str:
    """Byte-stable serialization (sorted keys, trailing newline)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def load_capture(text: str) -> dict:
    """Parse and validate a ``repro-profile/v1`` document."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"capture is not valid JSON: {exc}") from exc
    validate_capture(payload)
    return payload


def validate_capture(payload: dict) -> None:
    """Raise :class:`ValidationError` unless ``payload`` matches the schema."""
    if not isinstance(payload, dict):
        raise ValidationError("capture must be a JSON object")
    schema = payload.get("schema")
    if schema != JSON_SCHEMA:
        raise ValidationError(
            f"expected schema {JSON_SCHEMA!r}, got {schema!r}"
        )
    if set(payload) != _TOP_KEYS:
        raise ValidationError(
            f"capture top-level keys {sorted(payload)} do not match the "
            f"{JSON_SCHEMA} contract {sorted(_TOP_KEYS)}"
        )
    if not isinstance(payload["frames"], list):
        raise ValidationError("capture 'frames' must be a list")
    for frame in payload["frames"]:
        missing = _FRAME_KEYS - set(frame)
        if missing:
            raise ValidationError(
                f"capture frame {frame.get('path')!r} lacks keys "
                f"{sorted(missing)}"
            )


def _format_rate(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f}M/s"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k/s"
    return f"{value:.1f}/s"


def render_capture(payload: dict, top: int = 0) -> str:
    """Human-readable per-frame table, widest frames first.

    ``top`` limits the number of rows (0 = all). Counters are shown with
    their per-call-path rate (counter / frame inclusive seconds).
    """
    totals = payload["totals"]
    frames = sorted(
        payload["frames"], key=lambda f: (-f["total_s"], f["path"])
    )
    if top:
        frames = frames[:top]
    wall = totals["wall_s"]
    lines = [
        f"profile: {totals['n_frames']} frame(s), {totals['n_calls']} "
        f"call(s), {wall:.3f} s attributed wall",
        f"{'path':52s} {'calls':>7s} {'total':>9s} {'self':>9s} {'%':>6s}",
    ]
    for f in frames:
        pct = 100.0 * f["total_s"] / wall if wall > 0 else 0.0
        row = (
            f"{f['path']:52s} {f['n_calls']:>7d} {f['total_s']:>8.3f}s "
            f"{f['self_s']:>8.3f}s {pct:>5.1f}%"
        )
        extras = [
            f"{name}={value:g} ({_format_rate(value / f['total_s'])})"
            if f["total_s"] > 0 else f"{name}={value:g}"
            for name, value in sorted(f["counters"].items())
        ]
        if "peak_bytes" in f and f["peak_bytes"]:
            extras.append(f"peak_mem={f['peak_bytes'] / 1e6:.1f}MB")
        if extras:
            row += "  " + " ".join(extras)
        lines.append(row)
    if totals.get("dropped_events"):
        lines.append(
            f"(raw-event cap hit: {totals['dropped_events']} frame entries "
            "not kept for trace augmentation; aggregates are complete)"
        )
    return "\n".join(lines)
