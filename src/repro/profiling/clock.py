"""The profiler's sanctioned host-clock helper.

``repro.profiling`` is listed in REP002's simulated-packages scope, so raw
``time.*`` calls inside it are lint errors. Host-clock reads are the
profiler's entire job, though, so this module concentrates every one of
them behind a single pragma'd call site. **Pragma policy**: the *only*
``# lint: ignore[REP002]`` in the profiling package lives here; every other
module (and every instrumented simulation module, e.g. the greedy planner's
Fig-21 wall-time stats) must call :func:`host_clock_s` instead of touching
``time`` directly. That keeps "who reads the host clock" greppable to one
line while the lint still guards against accidental wall-clock use leaking
into simulated results.
"""

from __future__ import annotations

import time as _time


def host_clock_s() -> float:
    """Monotonic host seconds for profiling/instrumentation only.

    Never feed this into simulated time or costs — results must stay
    machine-independent. It is safe for wall-time *reporting* (frame
    durations, planner decision latency) because nothing downstream
    branches on it.
    """
    return _time.perf_counter()  # lint: ignore[REP002]
