"""Scoped profiling: install the profiler, run, export, restore.

Mirrors :class:`repro.telemetry.session.TelemetrySession` — the CLI's
``--profile PATH`` / ``--flamegraph PATH`` flags (and ``repro profile
--run ...``) wrap each command in a :class:`ProfileSession`; libraries can
do the same around any block of work::

    with ProfileSession(profile_path="prof.json") as session:
        run_tuning("lr-higgs", SHASpec(256, 2, 2), budget_usd=20.0)
    # prof.json now holds the repro-profile/v1 capture

On clean exit the session writes the capture and/or collapsed-stack
flamegraph, then restores whatever profiler was installed before —
sessions nest safely. With no paths and ``force_install=False`` the
session installs nothing and writes nothing, so callers never branch.
"""

from __future__ import annotations

from pathlib import Path

from repro.common.meta import coerce_meta
from repro.profiling import get_profiler, set_profiler
from repro.profiling.capture import capture_payload, to_json
from repro.profiling.core import Profiler
from repro.profiling.flamegraph import to_collapsed


class ProfileSession:
    """Context manager that profiles a block and exports the capture."""

    def __init__(
        self,
        profile_path: str | Path | None = None,
        flamegraph_path: str | Path | None = None,
        meta: dict | None = None,
        sample_memory: bool = False,
        force_install: bool = False,
    ) -> None:
        self.profile_path = Path(profile_path) if profile_path else None
        self.flamegraph_path = Path(flamegraph_path) if flamegraph_path else None
        self.meta = coerce_meta(meta)
        self.sample_memory = sample_memory
        self.force_install = force_install
        self.profiler: Profiler | None = None
        self._prev = None

    @property
    def active(self) -> bool:
        return (
            self.profile_path is not None
            or self.flamegraph_path is not None
            or self.force_install
        )

    def payload(self) -> dict:
        """The capture document for this session's profiler."""
        if self.profiler is None:
            raise RuntimeError("session never installed a profiler")
        return capture_payload(self.profiler, meta=self.meta)

    def __enter__(self) -> "ProfileSession":
        if self.active:
            self._prev = get_profiler()
            self.profiler = Profiler(sample_memory=self.sample_memory)
            set_profiler(self.profiler)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.profiler is None:
            return
        set_profiler(self._prev)
        self.profiler.close()
        if exc_type is not None:
            return  # don't write partial captures over a crash
        if self.profile_path is not None or self.flamegraph_path is not None:
            payload = self.payload()
            if self.profile_path is not None:
                self.profile_path.write_text(to_json(payload))
            if self.flamegraph_path is not None:
                self.flamegraph_path.write_text(to_collapsed(payload))
