"""Deterministic hot-path profiling: phases, flamegraphs, perf diffs.

The process-global default is a :class:`NullProfiler`, so the
``profile_phase(...)`` hooks on the planner/profiler/scheduler/executor hot
paths cost one attribute check until a caller installs a real
:class:`Profiler`::

    from repro.profiling import Profiler, get_profiler, set_profiler

    prof = Profiler()
    set_profiler(prof)
    ...  # run jobs; planner/scheduler/storage frames aggregate as they go
    set_profiler(None)

or, scoped, via :class:`repro.profiling.session.ProfileSession` (what the
CLI's ``--profile`` flag and ``repro profile --run`` use). Like telemetry,
profiling is strictly observational: it never consumes randomness and
never branches simulation logic, so simulated results are bit-identical
with the profiler installed or not.

Instrumentation sites open *phases*::

    with profile_phase("planner/spend_remainder") as ph:
        ...
        ph.add("candidates_evaluated", n)   # counter per call path

and the aggregate (wall time per call path, call counts, counters, and —
with ``sample_memory=True`` — tracemalloc peaks) exports as a
``repro-profile/v1`` capture, a collapsed-stack flamegraph, or extra
frames in the telemetry Chrome trace. ``repro profile --diff A.json
B.json`` computes per-frame deltas between two captures.

REP002 note: this package is in the lint's simulated-packages scope; the
only sanctioned host-clock call site is
:func:`repro.profiling.clock.host_clock_s`.
"""

from __future__ import annotations

import functools
from typing import Callable

from repro.profiling.capture import (
    capture_payload,
    load_capture,
    render_capture,
    to_json,
    validate_capture,
)
from repro.profiling.clock import host_clock_s
from repro.profiling.core import NULL_PHASE, FrameStat, NullProfiler, Profiler
from repro.profiling.diff import (
    diff_captures,
    diff_to_json,
    has_regressions,
    render_diff,
)
from repro.profiling.flamegraph import augment_chrome_trace, to_collapsed

_NULL_PROFILER = NullProfiler()
_profiler = _NULL_PROFILER


def get_profiler():
    """The process-global profiler (a no-op unless installed)."""
    return _profiler


def set_profiler(profiler) -> None:
    """Install (or, with ``None``, uninstall) the global profiler."""
    global _profiler
    _profiler = profiler if profiler is not None else _NULL_PROFILER


def profiling_enabled() -> bool:
    """True when a real profiler is installed."""
    return _profiler.enabled


def profile_phase(name: str):
    """A context manager timing one frame of the installed profiler.

    When profiling is off this returns a shared no-op phase, so
    instrumented hot paths pay one call and one attribute check. The
    yielded phase exposes ``add(counter, amount)`` to credit work to the
    frame's call path.
    """
    p = _profiler
    if not p.enabled:
        return NULL_PHASE
    return p.phase(name)


def profiled(name: str | None = None) -> Callable:
    """Decorator form of :func:`profile_phase`.

    ``name`` defaults to the wrapped function's qualified name. When
    profiling is off the wrapper adds a single truthiness check.
    """

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            p = _profiler
            if not p.enabled:
                return fn(*args, **kwargs)
            with p.phase(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


__all__ = [
    "FrameStat",
    "NullProfiler",
    "Profiler",
    "augment_chrome_trace",
    "capture_payload",
    "diff_captures",
    "diff_to_json",
    "get_profiler",
    "has_regressions",
    "host_clock_s",
    "load_capture",
    "profile_phase",
    "profiled",
    "profiling_enabled",
    "render_capture",
    "render_diff",
    "set_profiler",
    "to_collapsed",
    "to_json",
    "validate_capture",
]
