"""Per-frame deltas between two profiler captures (``repro profile --diff``).

The diff report (schema ``repro-profile-diff/v1``) joins two
``repro-profile/v1`` captures on call path and classifies every frame:

* ``regressed`` — target inclusive time exceeds base × threshold (only for
  frames whose base time clears ``min_s``; microsecond frames are timer
  noise, mirroring the bench harness's ``MIN_COMPARABLE_WALL_S``);
* ``improved`` — the symmetric speedup;
* ``added`` / ``removed`` — the frame exists on one side only (a changed
  code path, not a timing delta);
* ``unchanged`` — everything else.

Output ordering is the sorted call path — a pure function of the two
input documents, so diffing the same pair of files is deterministic no
matter how many times it runs. Diffing a capture against itself yields
zero deltas and no regressions (the CI smoke check).
"""

from __future__ import annotations

import json

from repro.common.meta import coerce_meta
from repro.profiling.capture import JSON_SCHEMA as CAPTURE_SCHEMA  # noqa: F401

DIFF_SCHEMA = "repro-profile-diff/v1"

#: Default regression threshold: target slower than base by this ratio.
DEFAULT_THRESHOLD = 1.2

#: Frames whose base time is below this are never classified by timing.
DEFAULT_MIN_S = 0.001


def diff_captures(
    base: dict,
    target: dict,
    threshold: float = DEFAULT_THRESHOLD,
    min_s: float = DEFAULT_MIN_S,
    meta: dict | None = None,
) -> dict:
    """The ``repro-profile-diff/v1`` report for ``base`` → ``target``."""
    base_frames = {f["path"]: f for f in base["frames"]}
    target_frames = {f["path"]: f for f in target["frames"]}
    frames = []
    n_regressed = n_improved = 0
    for path in sorted(set(base_frames) | set(target_frames)):
        b = base_frames.get(path)
        t = target_frames.get(path)
        b_total = b["total_s"] if b else 0.0
        t_total = t["total_s"] if t else 0.0
        if b is None:
            status = "added"
        elif t is None:
            status = "removed"
        elif b_total >= min_s and t_total > b_total * threshold:
            status = "regressed"
            n_regressed += 1
        elif b_total >= min_s and t_total < b_total / threshold:
            status = "improved"
            n_improved += 1
        else:
            status = "unchanged"
        counters = {}
        for name in sorted(
            set((b or {}).get("counters", {}))
            | set((t or {}).get("counters", {}))
        ):
            b_val = (b or {}).get("counters", {}).get(name, 0.0)
            t_val = (t or {}).get("counters", {}).get(name, 0.0)
            counters[name] = {
                "base": b_val,
                "target": t_val,
                "delta": round(t_val - b_val, 9),
            }
        frames.append(
            {
                "path": path,
                "status": status,
                "base_total_s": round(b_total, 9),
                "target_total_s": round(t_total, 9),
                "delta_s": round(t_total - b_total, 9),
                "ratio": round(t_total / b_total, 6) if b_total > 0 else None,
                "base_calls": b["n_calls"] if b else 0,
                "target_calls": t["n_calls"] if t else 0,
                "counters": counters,
            }
        )
    base_wall = base["totals"]["wall_s"]
    target_wall = target["totals"]["wall_s"]
    return {
        "schema": DIFF_SCHEMA,
        "meta": coerce_meta(meta),
        "base": {"meta": dict(base["meta"]), "wall_s": base_wall},
        "target": {"meta": dict(target["meta"]), "wall_s": target_wall},
        "threshold": threshold,
        "frames": frames,
        "summary": {
            "n_frames": len(frames),
            "n_regressed": n_regressed,
            "n_improved": n_improved,
            "n_added": sum(1 for f in frames if f["status"] == "added"),
            "n_removed": sum(1 for f in frames if f["status"] == "removed"),
            "delta_wall_s": round(target_wall - base_wall, 9),
        },
    }


def has_regressions(report: dict) -> bool:
    """True when any frame regressed past the report's threshold."""
    return report["summary"]["n_regressed"] > 0


def diff_to_json(report: dict) -> str:
    """Byte-stable serialization of a diff report."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


_MARK = {"regressed": "!", "improved": "+", "added": ">", "removed": "<"}


def render_diff(report: dict) -> str:
    """Per-frame delta table; regressions are marked with ``!``."""
    s = report["summary"]
    lines = [
        f"profile diff: {s['n_frames']} frame(s), "
        f"{s['n_regressed']} regressed, {s['n_improved']} improved, "
        f"{s['n_added']} added, {s['n_removed']} removed "
        f"(threshold {report['threshold']:.2f}x)",
        f"wall: {report['base']['wall_s']:.3f} s -> "
        f"{report['target']['wall_s']:.3f} s "
        f"({s['delta_wall_s']:+.3f} s)",
        f"  {'path':52s} {'base':>9s} {'target':>9s} {'delta':>9s} "
        f"{'ratio':>7s}",
    ]
    for f in report["frames"]:
        mark = _MARK.get(f["status"], " ")
        ratio = f"{f['ratio']:.2f}x" if f["ratio"] is not None else "-"
        lines.append(
            f"{mark} {f['path']:52s} {f['base_total_s']:>8.3f}s "
            f"{f['target_total_s']:>8.3f}s {f['delta_s']:>+8.3f}s "
            f"{ratio:>7s}"
        )
    return "\n".join(lines)
