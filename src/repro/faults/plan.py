"""Declarative fault plans (schema ``repro-faults/v1``).

A :class:`FaultPlan` describes *what can go wrong* in one run: function
crashes (at invoke or mid-epoch), invocation timeouts, cold-start
failures, per-backend storage transients and throttling windows, and
permanent function loss. It carries no randomness of its own — every
probabilistic decision is drawn by :class:`repro.faults.injector.
FaultInjector` from ``stream_for`` streams keyed by (seed, scope, site),
so the same (plan, seed) pair replays the exact same fault sequence.

The empty plan is the identity: ``FaultPlan()`` injects nothing, and the
executors skip the fault paths entirely, keeping fault-free runs
byte-identical to runs without any plan at all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.common.errors import ValidationError
from repro.common.types import StorageKind

FAULTS_SCHEMA = "repro-faults/v1"

#: Wildcard storage key: a spec under this key applies to any backend
#: that has no exact entry of its own.
ANY_STORAGE = "*"

_STORAGE_KEYS = tuple(kind.value for kind in StorageKind) + (ANY_STORAGE,)


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True, slots=True)
class RetrySpec:
    """Bounded exponential backoff with deterministic jitter.

    Attributes:
        max_attempts: attempts per operation before giving up (>= 1).
        base_backoff_s: sleep before the first retry.
        backoff_factor: multiplier per further retry.
        jitter: relative jitter width; the injector draws a deterministic
            factor in ``[1 - jitter, 1 + jitter]`` per retry site.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.5
    backoff_factor: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_s < 0:
            raise ValidationError("base_backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValidationError("backoff_factor must be >= 1")
        _check_prob("jitter", self.jitter)

    def backoff_s(self, attempt: int) -> float:
        """Nominal (jitter-free) sleep before retry ``attempt`` (1-based)."""
        if attempt <= 0:
            return 0.0
        return self.base_backoff_s * self.backoff_factor ** (attempt - 1)

    def to_payload(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_backoff_s": self.base_backoff_s,
            "backoff_factor": self.backoff_factor,
            "jitter": self.jitter,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RetrySpec":
        return cls(
            max_attempts=int(payload.get("max_attempts", 4)),
            base_backoff_s=float(payload.get("base_backoff_s", 0.5)),
            backoff_factor=float(payload.get("backoff_factor", 2.0)),
            jitter=float(payload.get("jitter", 0.25)),
        )


@dataclass(frozen=True, slots=True)
class ThrottleWindow:
    """A storage throttling interval on the simulated clock.

    While a sync/stage overlaps ``[start_s, start_s + duration_s)`` the
    overlapped portion of the transfer runs ``slowdown`` times slower.
    """

    start_s: float
    duration_s: float
    slowdown: float = 3.0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValidationError("throttle start_s must be >= 0")
        if self.duration_s <= 0:
            raise ValidationError("throttle duration_s must be > 0")
        if self.slowdown < 1.0:
            raise ValidationError("throttle slowdown must be >= 1")

    def overlap_s(self, start_s: float, duration_s: float) -> float:
        """Seconds of ``[start_s, start_s + duration_s)`` inside the window."""
        lo = max(start_s, self.start_s)
        hi = min(start_s + duration_s, self.start_s + self.duration_s)
        return max(0.0, hi - lo)

    def to_payload(self) -> dict:
        return {
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "slowdown": self.slowdown,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ThrottleWindow":
        return cls(
            start_s=float(payload["start_s"]),
            duration_s=float(payload["duration_s"]),
            slowdown=float(payload.get("slowdown", 3.0)),
        )


@dataclass(frozen=True, slots=True)
class StorageFaultSpec:
    """Fault profile for one storage backend (or the ``*`` wildcard).

    Attributes:
        transient_prob: probability one epoch's synchronization hits a
            transient-error episode (5xx / connection reset).
        max_errors: consecutive failed attempts in one episode; must stay
            below the retry budget for the episode to be survivable.
        error_timeout_s: latency burned per failed attempt.
        throttle_windows: throttling intervals on the simulated clock.
    """

    transient_prob: float = 0.0
    max_errors: int = 2
    error_timeout_s: float = 0.5
    throttle_windows: tuple[ThrottleWindow, ...] = ()

    def __post_init__(self) -> None:
        _check_prob("transient_prob", self.transient_prob)
        if self.max_errors < 1:
            raise ValidationError("max_errors must be >= 1")
        if self.error_timeout_s < 0:
            raise ValidationError("error_timeout_s must be >= 0")

    @property
    def is_empty(self) -> bool:
        return self.transient_prob == 0.0 and not self.throttle_windows

    def to_payload(self) -> dict:
        return {
            "transient_prob": self.transient_prob,
            "max_errors": self.max_errors,
            "error_timeout_s": self.error_timeout_s,
            "throttle_windows": [w.to_payload() for w in self.throttle_windows],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "StorageFaultSpec":
        return cls(
            transient_prob=float(payload.get("transient_prob", 0.0)),
            max_errors=int(payload.get("max_errors", 2)),
            error_timeout_s=float(payload.get("error_timeout_s", 0.5)),
            throttle_windows=tuple(
                ThrottleWindow.from_payload(w)
                for w in payload.get("throttle_windows", [])
            ),
        )


@dataclass(frozen=True, slots=True)
class PermanentLoss:
    """One function instance that dies for good at an epoch boundary.

    From ``epoch`` (1-based, matching the executor's epoch indices) on,
    the worker at ``rank`` never comes back under the current allocation;
    the scheduler must degrade to a different feasible allocation.
    """

    epoch: int
    rank: int = 0

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise ValidationError("permanent-loss epoch must be >= 1")
        if self.rank < 0:
            raise ValidationError("permanent-loss rank must be >= 0")

    def to_payload(self) -> dict:
        return {"epoch": self.epoch, "rank": self.rank}

    @classmethod
    def from_payload(cls, payload: dict) -> "PermanentLoss":
        return cls(epoch=int(payload["epoch"]), rank=int(payload.get("rank", 0)))


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Everything that can go wrong in one run, declaratively.

    Attributes:
        name: label carried into ledgers and reports.
        crash_prob: per-(epoch, function) crash probability.
        crash_mid_fraction: share of crashes that strike mid-epoch (the
            rest fail at invoke, before any useful work).
        invocation_timeout_s: per-function wall limit; ``None`` disables
            timeout enforcement. A worker whose attempt would exceed it is
            killed at the limit and speculatively re-executed.
        cold_start_failure_prob: probability a cold start fails and must
            be re-tried (each failure burns one cold-start window).
        storage: backend name (Table-1 catalog value or ``"*"``) →
            :class:`StorageFaultSpec`.
        permanent_loss: functions that die for good at epoch boundaries.
        retry: the bounded-backoff budget shared by all recovery paths.
    """

    name: str = "faults"
    crash_prob: float = 0.0
    crash_mid_fraction: float = 0.5
    invocation_timeout_s: float | None = None
    cold_start_failure_prob: float = 0.0
    storage: dict[str, StorageFaultSpec] = field(default_factory=dict)
    permanent_loss: tuple[PermanentLoss, ...] = ()
    retry: RetrySpec = field(default_factory=RetrySpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("fault plan needs a non-empty name")
        _check_prob("crash_prob", self.crash_prob)
        _check_prob("crash_mid_fraction", self.crash_mid_fraction)
        _check_prob("cold_start_failure_prob", self.cold_start_failure_prob)
        if self.invocation_timeout_s is not None and self.invocation_timeout_s <= 0:
            raise ValidationError("invocation_timeout_s must be > 0 (or None)")
        for key in self.storage:
            if key not in _STORAGE_KEYS:
                raise ValidationError(
                    f"unknown storage backend {key!r}; "
                    f"use one of {sorted(_STORAGE_KEYS)}"
                )

    @property
    def is_empty(self) -> bool:
        """True when this plan injects nothing at all."""
        return (
            self.crash_prob == 0.0
            and self.invocation_timeout_s is None
            and self.cold_start_failure_prob == 0.0
            and all(spec.is_empty for spec in self.storage.values())
            and not self.permanent_loss
        )

    def storage_spec(self, backend: str) -> StorageFaultSpec | None:
        """The spec for a backend, falling back to the ``*`` wildcard."""
        spec = self.storage.get(backend)
        if spec is None:
            spec = self.storage.get(ANY_STORAGE)
        return spec

    def without_permanent_loss(self) -> "FaultPlan":
        """A copy with the permanent-loss schedule cleared (tuning phases
        have no per-epoch gang to lose)."""
        return replace(self, permanent_loss=())

    # ------------------------------------------------------------------ payload
    def to_payload(self) -> dict:
        return {
            "schema": FAULTS_SCHEMA,
            "name": self.name,
            "crash_prob": self.crash_prob,
            "crash_mid_fraction": self.crash_mid_fraction,
            "invocation_timeout_s": self.invocation_timeout_s,
            "cold_start_failure_prob": self.cold_start_failure_prob,
            "storage": {
                key: spec.to_payload()
                for key, spec in sorted(self.storage.items())
            },
            "permanent_loss": [p.to_payload() for p in self.permanent_loss],
            "retry": self.retry.to_payload(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ValidationError(
                f"fault plan must be a JSON object, got {type(payload).__name__}"
            )
        schema = payload.get("schema")
        if schema != FAULTS_SCHEMA:
            raise ValidationError(
                f"expected schema {FAULTS_SCHEMA!r}, got {schema!r}"
            )
        timeout = payload.get("invocation_timeout_s")
        return cls(
            name=str(payload.get("name", "faults")),
            crash_prob=float(payload.get("crash_prob", 0.0)),
            crash_mid_fraction=float(payload.get("crash_mid_fraction", 0.5)),
            invocation_timeout_s=None if timeout is None else float(timeout),
            cold_start_failure_prob=float(
                payload.get("cold_start_failure_prob", 0.0)
            ),
            storage={
                key: StorageFaultSpec.from_payload(spec)
                for key, spec in payload.get("storage", {}).items()
            },
            permanent_loss=tuple(
                PermanentLoss.from_payload(p)
                for p in payload.get("permanent_loss", [])
            ),
            retry=RetrySpec.from_payload(payload.get("retry", {})),
        )

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Parse a plan document written by :meth:`to_json`."""
        text = Path(path).read_text()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"fault plan {path} is not valid JSON: {exc}") from exc
        return cls.from_payload(payload)

    @classmethod
    def default_profile(cls) -> "FaultPlan":
        """The chaos-matrix profile: crashes at p=0.05 per epoch·function,
        occasional cold-start failures, one storage throttling window, and
        one permanent function loss partway into the run."""
        return cls(
            name="default-chaos",
            crash_prob=0.05,
            crash_mid_fraction=0.5,
            cold_start_failure_prob=0.05,
            storage={
                ANY_STORAGE: StorageFaultSpec(
                    transient_prob=0.05,
                    max_errors=2,
                    error_timeout_s=0.5,
                    throttle_windows=(
                        ThrottleWindow(start_s=60.0, duration_s=120.0, slowdown=2.0),
                    ),
                )
            },
            permanent_loss=(PermanentLoss(epoch=5, rank=0),),
            # Faster backoff than the RetrySpec default: the chaos profile
            # crashes some worker almost every epoch on large gangs, and a
            # 0.5 s floor on a ~2 s epoch would put most of the recovery
            # budget into sleeping rather than re-execution.
            retry=RetrySpec(base_backoff_s=0.1),
        )
