"""The deterministic fault process driving one run's injections.

Every probabilistic decision — does this worker crash on this attempt,
how long is a retried cold start, how many transient errors does this
sync hit — is drawn from its own ``stream_for`` stream keyed by
``(seed, scope, site)``, where the *site* is the (epoch, rank, attempt)
coordinate of the decision. Keyed streams make the fault sequence a pure
function of (plan, seed): the event engine's interleaving, the number of
subscribers on the bus, and telemetry on/off cannot perturb a single
draw, so two identical runs produce byte-identical fault ledgers.

The injector owns the run's :class:`~repro.faults.ledger.FaultLedger`
and mirrors every record into lazily created telemetry counters (lazy so
that attaching no injector leaves the metrics registry untouched).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import stream_for
from repro.faults.ledger import FAULT_KINDS, FaultLedger
from repro.faults.plan import FaultPlan, PermanentLoss
from repro.telemetry import get_registry


@dataclass(frozen=True, slots=True)
class WorkerFault:
    """One injected worker failure.

    ``run_fraction`` is how much of the attempt's body ran before the
    crash (0.0 = failed at invoke, before any useful work).
    """

    kind: str  # "crash-invoke" | "crash-mid"
    run_fraction: float


@dataclass(frozen=True, slots=True)
class SyncPenalty:
    """Extra simulated time one synchronization pays to storage faults."""

    extra_s: float = 0.0
    n_transient: int = 0
    throttled_s: float = 0.0
    exhausted: bool = False


class FaultInjector:
    """Draws fault decisions for one run scope ("train" or "tune")."""

    def __init__(self, plan: FaultPlan, seed: int = 0, scope: str = "train") -> None:
        self.plan = plan
        self.seed = seed
        self.scope = scope
        self.ledger = FaultLedger(plan_name=plan.name)
        self._handled_losses: set[PermanentLoss] = set()
        registry = get_registry()
        # Created here, not at platform construction: an injector only
        # exists when a plan injects something, so fault-free runs create
        # zero extra metric families (byte-identical telemetry exports).
        self._m_injected = registry.counter(
            "repro_faults_injected_total",
            "Faults injected, by kind",
            labelnames=("kind",),
        )
        self._m_recovery = registry.counter(
            "repro_faults_recovery_actions_total",
            "Recovery actions taken, by kind",
            labelnames=("kind",),
        )
        self._m_lost = registry.counter(
            "repro_faults_lost_seconds_total",
            "Simulated seconds lost to faults plus recovery overhead",
        )

    # ------------------------------------------------------------------ plumbing
    def _u(self, *site: object) -> float:
        """One uniform draw from the stream keyed by this decision site."""
        return float(stream_for(self.seed, "faults", self.scope, *site).random())

    def _lognormal(self, sigma: float, *site: object) -> float:
        if sigma <= 0.0:
            return 1.0
        return float(
            stream_for(self.seed, "faults", self.scope, *site).lognormal(0.0, sigma)
        )

    def record(self, kind: str, t_s: float, **kw) -> None:
        """Ledger + telemetry in one step (see :class:`FaultLedger`)."""
        rec = self.ledger.record(kind, t_s, scope=self.scope, **kw)
        if kind in FAULT_KINDS:
            self._m_injected.labels(kind=kind).inc()
        else:
            self._m_recovery.labels(kind=kind).inc()
        if rec.lost_s:
            self._m_lost.inc(rec.lost_s)

    # ------------------------------------------------------------------ decisions
    # Every decision site carries an ``incarnation`` salt: the executor
    # bumps it when an epoch is re-run after a checkpoint restore, so the
    # re-run draws *fresh* faults instead of deterministically replaying
    # the failure that killed the previous incarnation.
    def worker_fault(self, epoch: int, rank: int, attempt: int,
                     incarnation: int = 0) -> WorkerFault | None:
        """Does this worker attempt crash — and if so, where in the body?"""
        p = self.plan.crash_prob
        if p <= 0.0:
            return None
        site = (epoch, rank, attempt, incarnation)
        if self._u("crash", *site) >= p:
            return None
        if self._u("crash-mid", *site) < self.plan.crash_mid_fraction:
            # Mid-epoch crash: somewhere in the middle 90% of the body.
            frac = 0.05 + 0.9 * self._u("crash-frac", *site)
            return WorkerFault(kind="crash-mid", run_fraction=frac)
        return WorkerFault(kind="crash-invoke", run_fraction=0.0)

    def cold_start_failures(self, epoch: int, rank: int, attempt: int,
                            incarnation: int = 0) -> int:
        """How many cold starts fail before one sticks (bounded)."""
        p = self.plan.cold_start_failure_prob
        if p <= 0.0:
            return 0
        n = 0
        # Bounded by the retry budget: a cold start that keeps failing
        # beyond it surfaces as a crash-like lost attempt, not a livelock.
        while n < self.plan.retry.max_attempts:
            if self._u("cold-fail", epoch, rank, attempt, incarnation, n) >= p:
                break
            n += 1
        return n

    def cold_window_factor(self, epoch: int, rank: int, attempt: int,
                           k: int, sigma: float, incarnation: int = 0) -> float:
        """Jitter for a retried cold-start window (site-keyed, so retries
        don't disturb the platform's shared noise stream)."""
        return self._lognormal(
            sigma, "cold-window", epoch, rank, attempt, k, incarnation
        )

    def retry_compute_factor(self, epoch: int, rank: int, attempt: int,
                             sigma: float, incarnation: int = 0) -> float:
        """Fresh compute jitter for a re-executed attempt."""
        return self._lognormal(
            sigma, "retry-compute", epoch, rank, attempt, incarnation
        )

    def backoff_s(self, attempt: int, *site: object) -> float:
        """Exponential backoff with deterministic jitter for this site."""
        retry = self.plan.retry
        base = retry.backoff_s(attempt)
        if base <= 0.0 or retry.jitter <= 0.0:
            return base
        u = self._u("backoff", attempt, *site)
        return base * (1.0 + retry.jitter * (2.0 * u - 1.0))

    # ------------------------------------------------------------------ permanent loss
    def pending_losses(self, epoch: int, n_functions: int) -> list[PermanentLoss]:
        """Losses due at or before ``epoch`` that haven't fired yet."""
        return [
            loss
            for loss in self.plan.permanent_loss
            if loss.epoch <= epoch
            and loss.rank < n_functions
            and loss not in self._handled_losses
        ]

    def mark_loss_handled(self, loss: PermanentLoss) -> None:
        """A loss fires once; after the replan it stays handled."""
        self._handled_losses.add(loss)

    # ------------------------------------------------------------------ storage
    def sync_penalty(self, epoch: int, backend: str, start_s: float,
                     sync_s: float, incarnation: int = 0) -> SyncPenalty:
        """Storage faults for one synchronization phase.

        Transient episodes burn ``error_timeout_s`` plus a backoff per
        failed attempt; throttle windows stretch the overlapped share of
        the transfer by their slowdown. ``exhausted`` is set when the
        episode outlasted the retry budget (the sync failed for good).

        ``start_s`` is the platform's simulated clock, which excludes the
        scheduler's search overhead — close enough for window matching,
        since windows are minutes wide and search overhead is seconds.
        """
        spec = self.plan.storage_spec(backend)
        if spec is None or sync_s <= 0.0:
            return SyncPenalty()
        extra = 0.0
        n_transient = 0
        exhausted = False
        if (
            spec.transient_prob > 0.0
            and self._u("sync", epoch, incarnation) < spec.transient_prob
        ):
            n_transient = 1 + int(
                self._u("sync-n", epoch, incarnation) * spec.max_errors
            )
            n_transient = min(n_transient, spec.max_errors)
            for k in range(n_transient):
                lost = spec.error_timeout_s
                backoff = self.backoff_s(k + 1, "sync", epoch, k, incarnation)
                extra += lost + backoff
                self.record(
                    "storage-transient", start_s + extra, epoch=epoch,
                    attempt=k, lost_s=lost, detail=backend,
                )
                if backoff:
                    self.record(
                        "retry", start_s + extra, epoch=epoch, attempt=k,
                        lost_s=backoff, detail=f"{backend} backoff",
                    )
            if n_transient >= self.plan.retry.max_attempts:
                exhausted = True
                self.record(
                    "retry-exhausted", start_s + extra, epoch=epoch,
                    detail=f"{backend} sync failed {n_transient}x",
                )
        throttled = 0.0
        for window in spec.throttle_windows:
            overlap = window.overlap_s(start_s, sync_s)
            if overlap > 0.0:
                throttled += overlap * (window.slowdown - 1.0)
        if throttled > 0.0:
            self.record(
                "storage-throttle", start_s, epoch=epoch, lost_s=throttled,
                detail=f"{backend} slowdown window",
            )
            extra += throttled
        return SyncPenalty(
            extra_s=extra, n_transient=n_transient,
            throttled_s=throttled, exhausted=exhausted,
        )

    def stage_penalty(self, stage: int, backend: str, start_s: float,
                      stage_s: float) -> SyncPenalty:
        """Storage faults for one SHA tuning stage (coarser grain: the
        stage's whole communication share is one exposure window)."""
        return self.sync_penalty(stage, backend, start_s, stage_s)
