"""Deterministic fault injection and the resilience layer.

See :mod:`repro.faults.plan` for the declarative fault plans
(``repro-faults/v1``), :mod:`repro.faults.injector` for the seeded fault
process, :mod:`repro.faults.ledger` for the fault/recovery ledger
(``repro-faults-report/v1``), and :mod:`repro.faults.resilience` for
checkpoint/restore and graceful degradation. ``docs/faults.md`` has the
full fault model and recovery semantics.
"""

from repro.faults.injector import FaultInjector, SyncPenalty, WorkerFault
from repro.faults.ledger import (
    FAULT_KINDS,
    RECORD_KINDS,
    RECOVERY_KINDS,
    REPORT_SCHEMA,
    FaultLedger,
    FaultRecord,
)
from repro.faults.plan import (
    ANY_STORAGE,
    FAULTS_SCHEMA,
    FaultPlan,
    PermanentLoss,
    RetrySpec,
    StorageFaultSpec,
    ThrottleWindow,
)
from repro.faults.resilience import (
    CheckpointStore,
    restore_overhead_s,
    select_degraded_allocation,
)

__all__ = [
    "ANY_STORAGE",
    "FAULTS_SCHEMA",
    "FAULT_KINDS",
    "RECORD_KINDS",
    "RECOVERY_KINDS",
    "REPORT_SCHEMA",
    "CheckpointStore",
    "FaultInjector",
    "FaultLedger",
    "FaultPlan",
    "FaultRecord",
    "PermanentLoss",
    "RetrySpec",
    "StorageFaultSpec",
    "SyncPenalty",
    "ThrottleWindow",
    "WorkerFault",
    "restore_overhead_s",
    "select_degraded_allocation",
]
