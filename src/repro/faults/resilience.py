"""Recovery mechanisms: epoch-boundary checkpoints and graceful degradation.

The training executor checkpoints at every epoch boundary (model state
lives in external storage already, so a checkpoint is free — restoring it
is what costs: one model transfer from the allocation's storage). A
failed epoch therefore re-runs only itself, never completed work.

On *permanent* function loss the current allocation is no longer viable;
:func:`select_degraded_allocation` re-runs Algorithm 2's greedy selection
over the surviving Pareto points so the job finishes on a feasible
allocation instead of aborting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import CheckpointError, ConstraintError
from repro.common.types import Allocation, StorageKind
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.training.adaptive_scheduler import select_best_allocation


def restore_overhead_s(
    model_mb: float,
    storage: StorageKind,
    platform: PlatformConfig = DEFAULT_PLATFORM,
) -> float:
    """Simulated cost of restoring the last checkpoint: one model
    transfer from the allocation's storage service (Eq. 3 constants)."""
    cfg = platform.storage_config(storage)
    return cfg.latency_s + model_mb / cfg.bandwidth_mb_s


@dataclass
class CheckpointStore:
    """Tracks the last completed epoch and the restores it paid for.

    Attributes:
        max_restores: job-level bound on checkpoint restores; exceeding it
            raises :class:`CheckpointError` instead of looping forever.
    """

    max_restores: int = 8
    last_epoch: int = 0
    n_restores: int = 0
    restore_overhead_total_s: float = 0.0
    _restored_epochs: list[int] = field(default_factory=list)

    def save(self, epoch: int) -> None:
        """Mark ``epoch`` completed (its state is durable in storage)."""
        self.last_epoch = epoch

    def restore(self, epoch: int, overhead_s: float, *, scope: str = "",
                t_s: float | None = None) -> float:
        """Account one restore; returns the overhead to add to the JCT."""
        if self.n_restores >= self.max_restores:
            raise CheckpointError(
                f"restore budget exhausted after {self.n_restores} restores "
                f"(failing epoch {epoch})",
                scope=scope, t_s=t_s,
            )
        self.n_restores += 1
        self.restore_overhead_total_s += overhead_s
        self._restored_epochs.append(epoch)
        return overhead_s

    @property
    def restored_epochs(self) -> tuple[int, ...]:
        return tuple(self._restored_epochs)


def select_degraded_allocation(
    candidates: list,
    excluded: set[Allocation],
    objective,
    remaining_epochs: float,
    budget_usd: float | None = None,
    qos_s: float | None = None,
):
    """Re-select from the Pareto boundary minus the lost allocations.

    Raises :class:`ConstraintError` when every candidate is excluded —
    the caller turns that into a surfaced :class:`FaultError`.
    """
    surviving = [p for p in candidates if p.allocation not in excluded]
    if not surviving:
        raise ConstraintError(
            "no surviving allocation after permanent function loss"
        )
    return select_best_allocation(
        surviving, objective, remaining_epochs,
        budget_usd=budget_usd, qos_s=qos_s,
    )
