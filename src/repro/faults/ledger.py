"""The fault/recovery ledger and its versioned report.

Every injected fault and every recovery action appends one
:class:`FaultRecord`, in simulated-time order, to a :class:`FaultLedger`.
The ledger renders as a human table or serializes as the versioned
``repro-faults-report/v1`` JSON document, and its aggregate split —
seconds lost *to faults* vs. seconds spent *recovering* — feeds the
``repro diagnose`` attribution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.meta import coerce_meta

REPORT_SCHEMA = "repro-faults-report/v1"

#: Record kinds describing an injected fault (time in ``lost_s`` was
#: destroyed by the fault itself)...
FAULT_KINDS = (
    "crash",
    "timeout",
    "cold-start-failure",
    "storage-transient",
    "storage-throttle",
    "permanent-loss",
)
#: ...and kinds describing the resilience layer's response (time in
#: ``lost_s`` is recovery overhead: backoffs, restores, re-planning).
RECOVERY_KINDS = (
    "retry",
    "retry-exhausted",
    "checkpoint-restore",
    "degraded-allocation",
)
RECORD_KINDS = FAULT_KINDS + RECOVERY_KINDS


@dataclass(frozen=True, slots=True)
class FaultRecord:
    """One fault or recovery action on the simulated clock.

    Attributes:
        kind: one of :data:`RECORD_KINDS`.
        t_s: simulated time the record was written.
        scope: "train", "tune", or "workflow".
        epoch: the executor's epoch (or SHA stage) index; -1 when N/A.
        rank: the worker rank involved; -1 for gang/storage-level records.
        attempt: the retry attempt (0-based); -1 when N/A.
        lost_s: simulated seconds attributed to this record.
        detail: short free-text context.
    """

    kind: str
    t_s: float
    scope: str = ""
    epoch: int = -1
    rank: int = -1
    attempt: int = -1
    lost_s: float = 0.0
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in RECORD_KINDS:
            raise ValidationError(f"unknown fault record kind {self.kind!r}")

    def to_payload(self) -> dict:
        return {
            "kind": self.kind,
            "t_s": self.t_s,
            "scope": self.scope,
            "epoch": self.epoch,
            "rank": self.rank,
            "attempt": self.attempt,
            "lost_s": self.lost_s,
            "detail": self.detail,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultRecord":
        return cls(
            kind=payload["kind"],
            t_s=float(payload["t_s"]),
            scope=payload.get("scope", ""),
            epoch=int(payload.get("epoch", -1)),
            rank=int(payload.get("rank", -1)),
            attempt=int(payload.get("attempt", -1)),
            lost_s=float(payload.get("lost_s", 0.0)),
            detail=payload.get("detail", ""),
        )


@dataclass
class FaultLedger:
    """Append-only record of everything the injector did to one run."""

    plan_name: str = ""
    records: list[FaultRecord] = field(default_factory=list)

    def record(
        self,
        kind: str,
        t_s: float,
        *,
        scope: str = "",
        epoch: int = -1,
        rank: int = -1,
        attempt: int = -1,
        lost_s: float = 0.0,
        detail: str = "",
    ) -> FaultRecord:
        """Append one record; returns it."""
        rec = FaultRecord(
            kind=kind, t_s=t_s, scope=scope, epoch=epoch, rank=rank,
            attempt=attempt, lost_s=lost_s, detail=detail,
        )
        self.records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------ aggregates
    def counts(self) -> dict[str, int]:
        """Record count per kind (only kinds that occurred)."""
        out: dict[str, int] = {}
        for rec in self.records:
            out[rec.kind] = out.get(rec.kind, 0) + 1
        return dict(sorted(out.items()))

    @property
    def fault_time_s(self) -> float:
        """Simulated seconds destroyed by injected faults."""
        return sum(r.lost_s for r in self.records if r.kind in FAULT_KINDS)

    @property
    def recovery_time_s(self) -> float:
        """Simulated seconds spent recovering (backoffs, restores, replans)."""
        return sum(r.lost_s for r in self.records if r.kind in RECOVERY_KINDS)

    def summary(self) -> dict:
        """The aggregate view embedded in reports and ``JobResult.extra``."""
        counts = self.counts()
        return {
            "plan": self.plan_name,
            "n_records": len(self.records),
            "n_faults": sum(
                n for kind, n in counts.items() if kind in FAULT_KINDS
            ),
            "n_recoveries": sum(
                n for kind, n in counts.items() if kind in RECOVERY_KINDS
            ),
            "fault_time_s": self.fault_time_s,
            "recovery_time_s": self.recovery_time_s,
            "by_kind": counts,
        }

    def extend(self, other: "FaultLedger") -> None:
        """Append another ledger's records (workflow = tune + train)."""
        self.records.extend(other.records)

    @classmethod
    def merged(cls, *ledgers: "FaultLedger | None") -> "FaultLedger":
        """One ledger combining every non-None input, in argument order."""
        names = [led.plan_name for led in ledgers if led is not None and led.plan_name]
        out = cls(plan_name=names[0] if names else "")
        for led in ledgers:
            if led is not None:
                out.extend(led)
        return out

    # ------------------------------------------------------------------ rendering
    def render(self) -> str:
        """Human-readable table plus the aggregate split."""
        lines = [
            f"fault ledger · plan={self.plan_name or '-'} · "
            f"{len(self.records)} record(s)",
            f"{'t_s':>10}  {'kind':<20} {'scope':<6} {'ep':>4} {'rank':>4} "
            f"{'try':>3}  {'lost_s':>9}  detail",
        ]
        for rec in self.records:
            lines.append(
                f"{rec.t_s:>10.2f}  {rec.kind:<20} {rec.scope:<6} "
                f"{rec.epoch if rec.epoch >= 0 else '-':>4} "
                f"{rec.rank if rec.rank >= 0 else '-':>4} "
                f"{rec.attempt if rec.attempt >= 0 else '-':>3}  "
                f"{rec.lost_s:>9.3f}  {rec.detail}"
            )
        s = self.summary()
        lines.append(
            f"total: {s['n_faults']} fault(s) ({s['fault_time_s']:.2f} s lost), "
            f"{s['n_recoveries']} recovery action(s) "
            f"({s['recovery_time_s']:.2f} s overhead)"
        )
        return "\n".join(lines)

    def to_payload(self, plan_payload: dict | None = None,
                   meta: dict | None = None) -> dict:
        """The ``repro-faults-report/v1`` document."""
        return {
            "schema": REPORT_SCHEMA,
            "meta": dict(sorted(coerce_meta(meta).items())),
            "plan": plan_payload or {},
            "summary": self.summary(),
            "records": [r.to_payload() for r in self.records],
        }

    def to_json(self, plan_payload: dict | None = None,
                meta: dict | None = None) -> str:
        return json.dumps(
            self.to_payload(plan_payload, meta), indent=2, sort_keys=True
        ) + "\n"

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultLedger":
        """Parse a report document written by :meth:`to_payload`."""
        if payload.get("schema") != REPORT_SCHEMA:
            raise ValidationError(
                f"expected schema {REPORT_SCHEMA!r}, got {payload.get('schema')!r}"
            )
        ledger = cls(plan_name=payload.get("summary", {}).get("plan", ""))
        for rec in payload.get("records", []):
            ledger.records.append(FaultRecord.from_payload(rec))
        return ledger
