"""Single source of the package version.

A leaf module (no imports) so provenance stamping — which runs inside
capture writers at the bottom of the layer stack — can read the version
without triggering the full ``repro`` package import.
"""

__version__ = "1.0.0"
