"""Declarative SLO specifications (schema ``repro-slo/v1``).

An :class:`SLOSpec` states what a run promised: an end-to-end deadline, a
spend budget, optional per-stage sub-budgets for SHA tuning stages, and
thresholds for the two leading indicators the paper's scheduler itself
watches — online-predictor drift (Algorithm 2's δ) and worker straggling.
The spec is pure data: the burn-rate accountant and alert engine interpret
it, the CLI loads it from JSON, and the REP006 schema registry pins its
key set.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import SLOError

SLO_SCHEMA = "repro-slo/v1"

#: Keys a ``repro-slo/v1`` document may carry (see the REP006 registry).
_PAYLOAD_KEYS = frozenset(
    {
        "schema", "name", "deadline_s", "budget_usd", "stage_budgets_usd",
        "warn_ratio", "predictor_drift_threshold", "straggler_slowdown",
    }
)


@dataclass(frozen=True, slots=True)
class SLOSpec:
    """What one run is held to.

    Attributes:
        name: label echoed in reports and alert messages.
        deadline_s: end-to-end completion deadline (simulated seconds), the
            paper's QoS target; ``None`` disables the dimension.
        budget_usd: end-to-end spend budget B; ``None`` disables it.
        stage_budgets_usd: per-SHA-stage sub-budgets as ``(stage, usd)``
            pairs (stage indices are 0-based).
        warn_ratio: consumed fraction of any budget at which its state
            degrades to ``warn``.
        predictor_drift_threshold: relative drift of the online predictor's
            horizon vs. the initially planned one that raises an alert;
            ``None`` disables the rule.
        straggler_slowdown: worst-worker/median slowdown within a gang that
            raises an alert; ``None`` disables the rule.
    """

    name: str = "slo"
    deadline_s: float | None = None
    budget_usd: float | None = None
    stage_budgets_usd: tuple[tuple[int, float], ...] = ()
    warn_ratio: float = 0.85
    predictor_drift_threshold: float | None = 0.25
    straggler_slowdown: float | None = 3.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SLOError(f"spec name must be a non-empty string, got {self.name!r}")
        if isinstance(self.stage_budgets_usd, dict):
            pairs = tuple(sorted(self.stage_budgets_usd.items()))
            object.__setattr__(self, "stage_budgets_usd", pairs)
        else:
            object.__setattr__(
                self, "stage_budgets_usd", tuple(sorted(tuple(self.stage_budgets_usd)))
            )
        if self.deadline_s is None and self.budget_usd is None and not self.stage_budgets_usd:
            raise SLOError(
                "spec needs at least one objective: deadline_s, budget_usd, "
                "or stage_budgets_usd"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise SLOError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.budget_usd is not None and self.budget_usd <= 0:
            raise SLOError(f"budget_usd must be positive, got {self.budget_usd}")
        seen: set[int] = set()
        for stage, limit_usd in self.stage_budgets_usd:
            if not isinstance(stage, int) or stage < 0:
                raise SLOError(f"stage indices must be ints >= 0, got {stage!r}")
            if stage in seen:
                raise SLOError(f"duplicate stage sub-budget for stage {stage}")
            seen.add(stage)
            if limit_usd <= 0:
                raise SLOError(
                    f"stage {stage} sub-budget must be positive, got {limit_usd}"
                )
        if not 0.0 < self.warn_ratio < 1.0:
            raise SLOError(f"warn_ratio must be in (0, 1), got {self.warn_ratio}")
        if self.predictor_drift_threshold is not None and self.predictor_drift_threshold <= 0:
            raise SLOError(
                f"predictor_drift_threshold must be positive, "
                f"got {self.predictor_drift_threshold}"
            )
        if self.straggler_slowdown is not None and self.straggler_slowdown <= 1.0:
            raise SLOError(
                f"straggler_slowdown must be > 1, got {self.straggler_slowdown}"
            )

    # ------------------------------------------------------------------ export
    def to_payload(self) -> dict:
        """The ``repro-slo/v1`` JSON document."""
        return {
            "schema": SLO_SCHEMA,
            "name": self.name,
            "deadline_s": self.deadline_s,
            "budget_usd": self.budget_usd,
            "stage_budgets_usd": {
                str(stage): limit_usd for stage, limit_usd in self.stage_budgets_usd
            },
            "warn_ratio": self.warn_ratio,
            "predictor_drift_threshold": self.predictor_drift_threshold,
            "straggler_slowdown": self.straggler_slowdown,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_payload(cls, payload: dict) -> "SLOSpec":
        if not isinstance(payload, dict):
            raise SLOError(f"spec document must be an object, got {type(payload).__name__}")
        schema = payload.get("schema")
        if schema != SLO_SCHEMA:
            raise SLOError(f"expected schema {SLO_SCHEMA!r}, got {schema!r}")
        unknown = sorted(set(payload) - _PAYLOAD_KEYS)
        if unknown:
            raise SLOError(f"spec document has unknown key(s): {', '.join(unknown)}")
        raw_stages = payload.get("stage_budgets_usd") or {}
        try:
            stages = tuple(
                sorted((int(stage), float(limit)) for stage, limit in raw_stages.items())
            )
        except (TypeError, ValueError, AttributeError) as exc:
            raise SLOError(
                f"stage_budgets_usd must map stage index to USD: {exc}"
            ) from exc
        return cls(
            name=payload.get("name", "slo"),
            deadline_s=payload.get("deadline_s"),
            budget_usd=payload.get("budget_usd"),
            stage_budgets_usd=stages,
            warn_ratio=payload.get("warn_ratio", 0.85),
            predictor_drift_threshold=payload.get("predictor_drift_threshold", 0.25),
            straggler_slowdown=payload.get("straggler_slowdown", 3.0),
        )

    @classmethod
    def from_json(cls, text: str) -> "SLOSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SLOError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_payload(payload)

    @classmethod
    def load(cls, path: str | Path) -> "SLOSpec":
        """Read a spec file; OSError propagates for missing files."""
        return cls.from_json(Path(path).read_text())

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    def stage_budget_usd(self, stage: int) -> float | None:
        """The sub-budget for one SHA stage, if declared."""
        for idx, limit_usd in self.stage_budgets_usd:
            if idx == stage:
                return limit_usd
        return None
