"""The live SLO guard: event stream in, accounting + alerts out.

:class:`SLOGuard` subscribes to the run-event bus and folds each event
into the burn-rate accountant, then re-evaluates the alert engine at the
event's simulated timestamp. Alert transitions are mirrored three ways:
appended to the guard's own event log (``alert_fired`` /
``alert_resolved`` lines), counted in the telemetry metrics registry
(lazily created ``repro_slo_alerts_total`` family, so a run with zero
alerts leaves the metrics snapshot byte-identical to a guard-off run),
and marked as Chrome-trace instant events when a tracer is live.

:class:`SLOSession` is the context-manager wrapper the CLI uses: it
installs an :class:`~repro.slo.events.EventBus` for the duration of a run,
wires the guard and/or a plain event log into it, and writes the JSONL
event log on exit.
"""

from __future__ import annotations

from pathlib import Path

from repro.common.meta import coerce_meta
from repro.slo.alerts import Alert, AlertEngine
from repro.slo.burnrate import STATUSES, BurnRateAccountant
from repro.slo.events import Event, EventBus, EventLog, get_event_bus, set_event_bus
from repro.slo.spec import SLOSpec
from repro.telemetry import get_registry, get_tracer
from repro.timeseries import get_sampler


class SLOGuard:
    """Folds the run-event stream into budget states and alerts."""

    def __init__(self, spec: SLOSpec, log: EventLog | None = None) -> None:
        self.spec = spec
        self.accountant = BurnRateAccountant(spec)
        self.engine = AlertEngine(spec)
        self.log = log if log is not None else EventLog()
        # Captured at construction so the guard mirrors into whatever
        # telemetry session is live when the run starts.
        self._registry = get_registry()
        self._tracer = get_tracer()
        self._m_alerts = None
        self._epoch = 0
        self._initial_prediction: float | None = None
        self._last_drift: float | None = None
        self._last_slowdown: float | None = None

    @property
    def alerts(self) -> tuple[Alert, ...]:
        """Every alert the engine has fired, in firing order."""
        return self.engine.alerts

    def on_event(self, event: Event) -> None:
        """Bus subscriber entry point: account one event, re-check rules."""
        self.log.record(event)
        if event.scope in ("train", "tune"):
            self.accountant.observe_clock(event.scope, event.t_s)
        data = event.data
        if event.kind == "epoch_done":
            self._epoch = int(data.get("epoch", self._epoch + 1))
            self.accountant.on_epoch(
                float(data.get("wall_s", 0.0)), float(data.get("cost_usd", 0.0))
            )
            slowdown = data.get("straggler_slowdown")
            if slowdown is not None:
                self._last_slowdown = float(slowdown)
        elif event.kind == "stage_done":
            self.accountant.on_stage(
                int(data.get("stage", 0)), float(data.get("cost_usd", 0.0))
            )
        elif event.kind in ("plan_chosen", "predictor_update", "predictor_shift"):
            predicted = data.get("predicted_total_epochs")
            if predicted is not None:
                predicted = float(predicted)
                if self._initial_prediction is None:
                    self._initial_prediction = predicted
                elif self._initial_prediction > 0:
                    self._last_drift = (
                        abs(predicted - self._initial_prediction)
                        / self._initial_prediction
                    )
                self.accountant.on_prediction(predicted)
        self._evaluate(event.t_s)

    def _evaluate(self, t_s: float) -> None:
        states = self.accountant.states()
        ts = get_sampler()
        if ts.enabled:
            # The worst rung any budget dimension sits on, as an index
            # into the ladder (0=ok .. 3=exhausted).
            level = max(
                (STATUSES.index(s.status) for s in states), default=0
            )
            ts.sample("slo.burn_level", t_s, float(level))
        fired, resolved = self.engine.evaluate(
            t_s,
            states,
            epoch=self._epoch,
            predictor_drift=self._last_drift,
            straggler_slowdown=self._last_slowdown,
        )
        for alert in fired:
            self._mirror(alert, "fired", t_s)
        for alert in resolved:
            self._mirror(alert, "resolved", t_s)

    def _mirror(self, alert: Alert, state: str, t_s: float) -> None:
        # Append directly (not via the bus) — re-emitting would re-enter
        # on_event and loop.
        self.log.append(
            f"alert_{state}",
            t_s,
            scope=alert.scope,
            rule=alert.rule,
            severity=alert.severity,
            message=alert.message,
            epoch=self._epoch,
        )
        if self._m_alerts is None:
            # Lazy: a zero-alert run must not add an (empty) metric family
            # to the registry snapshot.
            self._m_alerts = self._registry.counter(
                "repro_slo_alerts_total",
                "SLO guard alert transitions by rule and state",
                labelnames=("rule", "state"),
            )
        self._m_alerts.labels(rule=alert.rule, state=state).inc()
        self._tracer.instant(
            f"alert:{alert.rule}",
            "slo",
            t_s,
            "slo",
            rule=alert.rule,
            scope=alert.scope,
            severity=alert.severity,
            state=state,
        )


class SLOSession:
    """Installs the event bus (and optionally the guard) around a run.

    Args:
        spec: an :class:`SLOSpec`, a path to a ``repro-slo/v1`` JSON file,
            or ``None`` to only capture the event log.
        events_path: where to write the ``repro-events/v1`` JSONL log on a
            clean exit; ``None`` skips the write.
        meta: run metadata for the event-log header — a plain dict or
            anything with a ``to_meta()`` method (a provenance stamp).
        force_log: install the bus and capture the event log even with no
            spec and no events path (the ``--save-run`` bundler reads
            ``session.log`` after exit).

    With neither a spec, an events path, nor ``force_log`` the session is
    inert: nothing is installed and the run stays byte-identical to a
    guard-off run.
    """

    def __init__(
        self,
        spec: SLOSpec | str | Path | None = None,
        events_path: str | Path | None = None,
        meta: dict | None = None,
        force_log: bool = False,
    ) -> None:
        if isinstance(spec, (str, Path)):
            spec = SLOSpec.load(spec)
        self.spec = spec
        self.events_path = Path(events_path) if events_path is not None else None
        self.meta = coerce_meta(meta)
        self.force_log = force_log
        self.guard: SLOGuard | None = None
        self.log: EventLog | None = None
        self._prev_bus = None

    @property
    def active(self) -> bool:
        """True when entering the session will install a live bus."""
        return (
            self.spec is not None
            or self.events_path is not None
            or self.force_log
        )

    def __enter__(self) -> "SLOSession":
        if not self.active:
            return self
        self._prev_bus = get_event_bus()
        bus = EventBus()
        self.log = EventLog(meta=self.meta)
        if self.spec is not None:
            self.guard = SLOGuard(self.spec, log=self.log)
            bus.subscribe(self.guard.on_event)
        else:
            bus.subscribe(self.log.record)
        set_event_bus(bus)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.active:
            return
        set_event_bus(self._prev_bus)
        self._prev_bus = None
        if exc_type is None and self.events_path is not None and self.log is not None:
            self.events_path.write_text(self.log.to_jsonl())
