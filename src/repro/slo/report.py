"""SLO evaluation reports (schema ``repro-slo-report/v1``).

Three builders cover the ways a spec can be judged:

* :func:`evaluate_guard` — read the final budget states straight off a
  live :class:`~repro.slo.guard.SLOGuard`;
* :func:`replay_events` — rebuild a guard by replaying a saved
  ``repro-events/v1`` log through fresh accounting (alert lines in the
  saved log are skipped so replay never double-counts);
* :func:`evaluate_summary` — coarse final-state check from just a JCT and
  a cost, for telemetry captures that carry no event log.

The report renders as a table or as deterministic JSON; the ``verdict``
block is what drives the CLI's 0/1 exit code. The diagnostics bridge
(:func:`error_budget_findings`) restates budget consumption as findings
attributed to critical-path components so ``repro diagnose`` can show
*where* the error budget went.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.common.meta import coerce_meta
from repro.slo.alerts import Alert
from repro.slo.events import EventLog
from repro.slo.guard import SLOGuard
from repro.slo.spec import SLOSpec

REPORT_SCHEMA = "repro-slo-report/v1"


def _r(value: float | None, digits: int = 9) -> float | None:
    return None if value is None else round(value, digits)


@dataclass(frozen=True, slots=True)
class ObjectiveResult:
    """Final judgement for one SLO dimension."""

    dimension: str
    limit: float
    consumed: float
    projected: float | None
    burn_rate: float | None
    status: str
    violated: bool


@dataclass(frozen=True, slots=True)
class SLOReport:
    """One spec evaluated against one run."""

    meta: dict
    spec: SLOSpec
    objectives: tuple[ObjectiveResult, ...]
    alerts: tuple[Alert, ...]

    @property
    def violated(self) -> bool:
        """True if any declared objective ended violated."""
        return any(o.violated for o in self.objectives)

    @property
    def violations(self) -> tuple[str, ...]:
        """The violated dimensions, in report order."""
        return tuple(o.dimension for o in self.objectives if o.violated)

    def to_payload(self) -> dict:
        """The ``repro-slo-report/v1`` JSON document."""
        return {
            "schema": REPORT_SCHEMA,
            "meta": dict(sorted(self.meta.items())),
            "spec": self.spec.to_payload(),
            "objectives": [
                {
                    "dimension": o.dimension,
                    "limit": _r(o.limit),
                    "consumed": _r(o.consumed),
                    "projected": _r(o.projected),
                    "burn_rate": _r(o.burn_rate),
                    "status": o.status,
                    "violated": o.violated,
                }
                for o in self.objectives
            ],
            "alerts": [a.to_payload() for a in self.alerts],
            "verdict": {
                "violated": self.violated,
                "violations": list(self.violations),
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        """Human-readable table."""
        lines = [f"SLO report — spec {self.spec.name!r}"]
        for key in sorted(self.meta):
            lines.append(f"  {key}: {self.meta[key]}")
        lines.append("")
        lines.append(
            f"  {'dimension'.ljust(12)}  {'consumed'.rjust(14)}  "
            f"{'limit'.rjust(14)}  {'projected'.rjust(14)}  "
            f"{'burn'.rjust(6)}  status"
        )
        for o in self.objectives:
            unit = "s" if o.dimension == "deadline" else "USD"
            projected = f"{o.projected:.3f} {unit}" if o.projected is not None else "-"
            burn = f"{o.burn_rate:.2f}x" if o.burn_rate is not None else "-"
            status = o.status.upper() if o.violated else o.status
            lines.append(
                f"  {o.dimension.ljust(12)}  "
                f"{f'{o.consumed:.3f} {unit}'.rjust(14)}  "
                f"{f'{o.limit:.3f} {unit}'.rjust(14)}  "
                f"{projected.rjust(14)}  {burn.rjust(6)}  {status}"
            )
        if self.alerts:
            lines.append("")
            lines.append(f"  alerts ({len(self.alerts)}):")
            for a in self.alerts:
                tail = (
                    f"resolved at {a.resolved_t_s:.3f} s"
                    if a.resolved_t_s is not None
                    else "still active"
                )
                lines.append(
                    f"    [{a.severity}] {a.rule} ({a.scope}) fired at "
                    f"{a.fired_t_s:.3f} s, {tail}: {a.message}"
                )
        lines.append("")
        if self.violated:
            lines.append(f"  verdict: VIOLATED ({', '.join(self.violations)})")
        else:
            lines.append("  verdict: met")
        return "\n".join(lines)


def evaluate_guard(guard: SLOGuard, meta: dict | None = None) -> SLOReport:
    """Judge a spec from a guard's final budget states."""
    objectives = tuple(
        ObjectiveResult(
            dimension=st.dimension,
            limit=st.limit,
            consumed=st.consumed,
            projected=st.projected,
            burn_rate=st.burn_rate,
            status=st.status,
            violated=st.consumed >= st.limit,
        )
        for st in guard.accountant.states()
    )
    return SLOReport(
        meta=coerce_meta(meta),
        spec=guard.spec,
        objectives=objectives,
        alerts=guard.alerts,
    )


def replay_events(
    spec: SLOSpec, log: EventLog | str, meta: dict | None = None
) -> SLOReport:
    """Judge a spec by replaying a saved event log through a fresh guard.

    Saved ``alert_fired`` / ``alert_resolved`` lines are skipped — the
    replayed guard re-derives its own alerts, so a log that already went
    through a guard round-trips instead of double-counting.
    """
    if isinstance(log, str):
        log = EventLog.from_jsonl(log)
    guard = SLOGuard(spec)
    for event in log.events:
        if event.kind in ("alert_fired", "alert_resolved"):
            continue
        guard.on_event(event)
    return evaluate_guard(guard, meta={**log.meta, **(meta or {})})


def evaluate_summary(
    spec: SLOSpec, jct_s: float, cost_usd: float | None, meta: dict | None = None
) -> SLOReport:
    """Coarse final-state judgement from a run summary (no event stream).

    Only the end-to-end deadline and budget can be checked — per-stage
    splits, projections and burn rates need the event log.
    """
    objectives: list[ObjectiveResult] = []
    if spec.deadline_s is not None:
        status = (
            "exhausted"
            if jct_s >= spec.deadline_s
            else "warn"
            if jct_s > spec.warn_ratio * spec.deadline_s
            else "ok"
        )
        objectives.append(
            ObjectiveResult(
                dimension="deadline",
                limit=spec.deadline_s,
                consumed=jct_s,
                projected=None,
                burn_rate=None,
                status=status,
                violated=jct_s >= spec.deadline_s,
            )
        )
    if spec.budget_usd is not None and cost_usd is not None:
        status = (
            "exhausted"
            if cost_usd >= spec.budget_usd
            else "warn"
            if cost_usd > spec.warn_ratio * spec.budget_usd
            else "ok"
        )
        objectives.append(
            ObjectiveResult(
                dimension="budget",
                limit=spec.budget_usd,
                consumed=cost_usd,
                projected=None,
                burn_rate=None,
                status=status,
                violated=cost_usd >= spec.budget_usd,
            )
        )
    return SLOReport(
        meta=coerce_meta(meta),
        spec=spec,
        objectives=tuple(objectives),
        alerts=(),
    )


def error_budget_findings(spec, critical_path, jct_s, cost_usd):
    """Diagnostics bridge: budget consumption as critical-path findings.

    Returns ``repro.diagnostics`` ``Finding``s (kind ``"slo"``) that state
    what fraction of each declared error budget the run consumed and which
    critical-path components that consumption is attributable to.
    """
    from repro.diagnostics.engine import Finding

    findings = []
    if spec.deadline_s is not None and jct_s is not None:
        fraction = jct_s / spec.deadline_s
        shares = ", ".join(
            f"{c.component} {c.seconds / spec.deadline_s * 100.0:.1f}%"
            for c in critical_path.components
            if c.seconds > 0
        )
        findings.append(
            Finding(
                kind="slo",
                severity="warning" if fraction > 1.0 else "info",
                message=(
                    f"deadline budget {fraction * 100.0:.1f}% consumed "
                    f"({jct_s:.3f} s of {spec.deadline_s:.3f} s); "
                    f"attribution: {shares}"
                ),
                data={
                    "dimension": "deadline",
                    "consumed_fraction": round(fraction, 9),
                    "attribution": {
                        c.component: round(c.seconds / spec.deadline_s, 9)
                        for c in critical_path.components
                        if c.seconds > 0
                    },
                },
            )
        )
    if spec.budget_usd is not None and cost_usd is not None:
        fraction = cost_usd / spec.budget_usd
        findings.append(
            Finding(
                kind="slo",
                severity="warning" if fraction > 1.0 else "info",
                message=(
                    f"spend budget {fraction * 100.0:.1f}% consumed "
                    f"({cost_usd:.6f} USD of {spec.budget_usd:.6f} USD)"
                ),
                data={
                    "dimension": "budget",
                    "consumed_fraction": round(fraction, 9),
                },
            )
        )
    return tuple(findings)
