"""SLO alert rules and the fire/resolve lifecycle engine.

Each evaluation of :class:`AlertEngine` re-checks every rule condition
against the current :class:`~repro.slo.burnrate.BudgetState`s and the
latest predictor-drift / straggler readings. A condition turning true
fires an :class:`Alert`; the same condition turning false later resolves
it. Deduplication is structural — one live alert per ``(rule, scope)``
key — so a condition that stays true across many epochs produces exactly
one alert, not one per evaluation. Nothing here reads the host clock:
fired/resolved timestamps are the simulated job time handed in by the
caller, which keeps the whole alert stream deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.slo.burnrate import BudgetState
from repro.slo.spec import SLOSpec


@dataclass(frozen=True, slots=True)
class AlertRule:
    """One named condition the engine watches."""

    name: str
    severity: str
    description: str


#: The full rule catalogue, in evaluation order.
RULES: tuple[AlertRule, ...] = (
    AlertRule(
        "deadline-exhausted",
        "critical",
        "Elapsed simulated time has passed the deadline; the QoS target is missed.",
    ),
    AlertRule(
        "deadline-projected-miss",
        "critical",
        "Projected completion (predictor horizon x recent epoch rate) "
        "overshoots the deadline.",
    ),
    AlertRule(
        "deadline-burn",
        "warning",
        "Deadline consumption passed the warn ratio, or the windowed burn "
        "rate exceeds 1x.",
    ),
    AlertRule(
        "budget-exhausted",
        "critical",
        "Billed spend has passed the budget; the cost SLO is violated.",
    ),
    AlertRule(
        "budget-projected-overrun",
        "critical",
        "Projected total spend overshoots the budget.",
    ),
    AlertRule(
        "budget-burn",
        "warning",
        "Budget consumption passed the warn ratio, or the windowed burn "
        "rate exceeds 1x.",
    ),
    AlertRule(
        "stage-budget-overrun",
        "warning",
        "One SHA tuning stage spent more than its declared sub-budget.",
    ),
    AlertRule(
        "predictor-drift",
        "warning",
        "The online predictor's horizon drifted past the spec threshold "
        "relative to the initially planned horizon.",
    ),
    AlertRule(
        "straggler",
        "warning",
        "A gang's slowest worker exceeded the straggler slowdown threshold "
        "vs. the gang median.",
    ),
)


@dataclass(slots=True)
class Alert:
    """One fired (and possibly later resolved) rule instance."""

    rule: str
    scope: str
    severity: str
    message: str
    fired_t_s: float
    fired_epoch: int
    resolved_t_s: float | None = None
    resolved_epoch: int | None = None

    @property
    def active(self) -> bool:
        """True while the underlying condition still holds."""
        return self.resolved_t_s is None

    @property
    def key(self) -> tuple[str, str]:
        """The structural dedup key."""
        return (self.rule, self.scope)

    def to_payload(self) -> dict:
        """JSON-serializable view used by SLO reports."""
        return {
            "rule": self.rule,
            "scope": self.scope,
            "severity": self.severity,
            "message": self.message,
            "fired_t_s": round(self.fired_t_s, 9),
            "fired_epoch": self.fired_epoch,
            "resolved_t_s": (
                None if self.resolved_t_s is None else round(self.resolved_t_s, 9)
            ),
            "resolved_epoch": self.resolved_epoch,
        }


@dataclass
class AlertEngine:
    """Evaluates the rule catalogue against budget states, with lifecycle."""

    spec: SLOSpec
    history: list[Alert] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._severity = {rule.name: rule.severity for rule in RULES}
        self._active: dict[tuple[str, str], Alert] = {}

    @property
    def alerts(self) -> tuple[Alert, ...]:
        """Every alert ever fired, in firing order."""
        return tuple(self.history)

    def evaluate(
        self,
        t_s: float,
        states: tuple[BudgetState, ...],
        epoch: int = 0,
        predictor_drift: float | None = None,
        straggler_slowdown: float | None = None,
    ) -> tuple[list[Alert], list[Alert]]:
        """Re-check every rule; returns (newly fired, newly resolved).

        Conditions are independent predicates rather than status equality,
        so e.g. ``deadline-burn`` stays active (instead of bouncing) while
        the dimension escalates through critical to exhausted.
        """
        checks: list[tuple[str, str, bool, str]] = []
        for st in states:
            if st.dimension == "deadline":
                checks.append(
                    (
                        "deadline-exhausted",
                        st.dimension,
                        st.consumed >= st.limit,
                        f"elapsed {st.consumed:.3f} s passed the deadline "
                        f"{st.limit:.3f} s",
                    )
                )
                checks.append(
                    (
                        "deadline-projected-miss",
                        st.dimension,
                        st.projected is not None and st.projected > st.limit,
                        (
                            f"projected completion "
                            f"{st.projected if st.projected is not None else 0.0:.3f} s "
                            f"overshoots the deadline {st.limit:.3f} s"
                        ),
                    )
                )
                checks.append(
                    (
                        "deadline-burn",
                        st.dimension,
                        self._burning(st),
                        f"deadline budget {st.fraction * 100.0:.1f}% consumed"
                        + (
                            f", burn rate {st.burn_rate:.2f}x"
                            if st.burn_rate is not None
                            else ""
                        ),
                    )
                )
            elif st.dimension == "budget":
                checks.append(
                    (
                        "budget-exhausted",
                        st.dimension,
                        st.consumed >= st.limit,
                        f"billed {st.consumed:.6f} USD passed the budget "
                        f"{st.limit:.6f} USD",
                    )
                )
                checks.append(
                    (
                        "budget-projected-overrun",
                        st.dimension,
                        st.projected is not None and st.projected > st.limit,
                        (
                            f"projected spend "
                            f"{st.projected if st.projected is not None else 0.0:.6f} USD "
                            f"overshoots the budget {st.limit:.6f} USD"
                        ),
                    )
                )
                checks.append(
                    (
                        "budget-burn",
                        st.dimension,
                        self._burning(st),
                        f"spend budget {st.fraction * 100.0:.1f}% consumed"
                        + (
                            f", burn rate {st.burn_rate:.2f}x"
                            if st.burn_rate is not None
                            else ""
                        ),
                    )
                )
            else:
                checks.append(
                    (
                        "stage-budget-overrun",
                        st.dimension,
                        st.consumed >= st.limit,
                        f"{st.dimension} spent {st.consumed:.6f} USD of its "
                        f"{st.limit:.6f} USD sub-budget",
                    )
                )
        drift_limit = self.spec.predictor_drift_threshold
        drift_hit = (
            drift_limit is not None
            and predictor_drift is not None
            and predictor_drift > drift_limit
        )
        checks.append(
            (
                "predictor-drift",
                "predictor",
                drift_hit,
                (
                    f"predictor horizon drifted {predictor_drift * 100.0:.1f}% "
                    f"(threshold {drift_limit * 100.0:.1f}%)"
                    if drift_hit
                    else ""
                ),
            )
        )
        slow_limit = self.spec.straggler_slowdown
        slow_hit = (
            slow_limit is not None
            and straggler_slowdown is not None
            and straggler_slowdown >= slow_limit
        )
        checks.append(
            (
                "straggler",
                "workers",
                slow_hit,
                (
                    f"slowest worker at {straggler_slowdown:.2f}x the gang "
                    f"median (threshold {slow_limit:.2f}x)"
                    if slow_hit
                    else ""
                ),
            )
        )

        fired: list[Alert] = []
        resolved: list[Alert] = []
        for rule, scope, condition, message in checks:
            key = (rule, scope)
            live = self._active.get(key)
            if condition and live is None:
                alert = Alert(
                    rule=rule,
                    scope=scope,
                    severity=self._severity[rule],
                    message=message,
                    fired_t_s=t_s,
                    fired_epoch=epoch,
                )
                self._active[key] = alert
                self.history.append(alert)
                fired.append(alert)
            elif not condition and live is not None:
                live.resolved_t_s = t_s
                live.resolved_epoch = epoch
                del self._active[key]
                resolved.append(live)
        return fired, resolved

    def _burning(self, st: BudgetState) -> bool:
        """The shared warn-tier predicate for deadline/budget burn rules."""
        if st.consumed > self.spec.warn_ratio * st.limit:
            return True
        return (
            st.burn_rate is not None
            and st.burn_rate > 1.0
            and st.consumed >= 0.1 * st.limit
        )
