"""Structured run events: the hook bus and the append-only event log.

Executors, schedulers and planners publish milestone events (plan chosen,
epoch done, restart begun/hidden, predictor shift, SHA stage done) into a
process-global bus. The default bus is a no-op (:class:`NullEventBus`), so
the publish sites cost ~nothing until a caller installs a live
:class:`EventBus` — the same collector pattern ``repro.telemetry`` uses,
and the same contract: emitting never consumes randomness and never
branches simulation logic.

Subscribed sinks include the :class:`EventLog`, which serializes the run
as a versioned JSONL document (schema ``repro-events/v1``: one header
line, then one line per event in emission order), and the SLO guard
(:class:`repro.slo.guard.SLOGuard`), which folds the stream into burn-rate
accounting and alerts. Timestamps are the *emitter's* simulated job-time
clock — never the host wall clock — so the log is byte-identical across
same-seed runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.common.errors import SLOError
from repro.common.meta import coerce_meta

EVENTS_SCHEMA = "repro-events/v1"

#: Every kind the bus accepts; an unknown kind is a programming error.
EVENT_KINDS = (
    "plan_chosen",
    "epoch_done",
    "stage_done",
    "restart_begun",
    "restart_hidden",
    "predictor_update",
    "predictor_shift",
    "phase_done",
    "alert_fired",
    "alert_resolved",
    "fault_injected",
    "retry_exhausted",
    "checkpoint_restore",
    "degraded_allocation",
)


@dataclass(frozen=True, slots=True)
class Event:
    """One structured milestone in a run's life.

    Attributes:
        kind: one of :data:`EVENT_KINDS`.
        t_s: the emitter's job-time clock, seconds of simulated time.
        scope: which sub-job emitted it ("train", "tune", "workflow", or an
            alert's budget dimension).
        data: kind-specific JSON-serializable payload.
    """

    kind: str
    t_s: float
    scope: str = ""
    data: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise SLOError(f"unknown event kind {self.kind!r}")
        if self.t_s < 0:
            raise SLOError(f"event time must be >= 0, got {self.t_s}")


class EventBus:
    """Delivers emitted events to every subscriber, in subscription order."""

    def __init__(self) -> None:
        self._subscribers: list = []

    @property
    def enabled(self) -> bool:
        return True

    def subscribe(self, callback) -> None:
        """Register ``callback(event)`` for every subsequent emission."""
        self._subscribers.append(callback)

    def emit(self, kind: str, t_s: float, scope: str = "", **data) -> Event:
        """Build one :class:`Event` and deliver it to every subscriber."""
        event = Event(kind=kind, t_s=t_s, scope=scope, data=dict(data))
        for callback in self._subscribers:
            callback(event)
        return event


class NullEventBus:
    """The default process-global bus: publishing is a no-op."""

    @property
    def enabled(self) -> bool:
        return False

    def subscribe(self, callback) -> None:
        raise SLOError("cannot subscribe to the null event bus; install an EventBus")

    def emit(self, kind: str, t_s: float, scope: str = "", **data) -> None:
        return None


_NULL_BUS = NullEventBus()
_bus = _NULL_BUS


def get_event_bus():
    """The process-global event bus (a no-op unless installed)."""
    return _bus


def set_event_bus(bus) -> None:
    """Install (or, with ``None``, uninstall) the global event bus."""
    global _bus
    _bus = bus if bus is not None else _NULL_BUS


class EventLog:
    """Append-only sink that serializes events as ``repro-events/v1`` JSONL.

    Line 1 is a header carrying the schema id and run metadata; every
    following line is one event with a ``seq`` number assigned from its
    position, so the document is self-describing and diffable.
    """

    def __init__(self, meta: dict | None = None) -> None:
        self.meta = coerce_meta(meta)
        self.events: list[Event] = []

    def record(self, event: Event) -> None:
        """Subscriber entry point: append one event."""
        self.events.append(event)

    def append(self, kind: str, t_s: float, scope: str = "", **data) -> Event:
        """Append a locally built event (bypasses the bus)."""
        event = Event(kind=kind, t_s=t_s, scope=scope, data=dict(data))
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def to_jsonl(self) -> str:
        """The versioned JSONL document, deterministic byte for byte."""
        header = {"schema": EVENTS_SCHEMA, "meta": dict(sorted(self.meta.items()))}
        lines = [json.dumps(header, sort_keys=True)]
        for seq, event in enumerate(self.events):
            lines.append(
                # t_s is written at full precision — JSON floats round-trip
                # exactly, so a replayed log reproduces the live guard's
                # arithmetic bit for bit.
                json.dumps(
                    {
                        "seq": seq,
                        "t_s": event.t_s,
                        "kind": event.kind,
                        "scope": event.scope,
                        "data": event.data,
                    },
                    sort_keys=True,
                )
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "EventLog":
        """Parse a document written by :meth:`to_jsonl`."""
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise SLOError("empty event log document")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise SLOError(f"event log header is not valid JSON: {exc}") from exc
        if not isinstance(header, dict):
            raise SLOError(
                f"event log header must be an object, got {type(header).__name__}"
            )
        if header.get("schema") != EVENTS_SCHEMA:
            raise SLOError(
                f"expected schema {EVENTS_SCHEMA!r}, got {header.get('schema')!r}"
            )
        log = cls(meta=header.get("meta", {}))
        for i, line in enumerate(lines[1:], start=1):
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SLOError(f"event log line {i + 1} is truncated or malformed: {exc}") from exc
            log.append(
                row["kind"],
                float(row["t_s"]),
                scope=row.get("scope", ""),
                **row.get("data", {}),
            )
        return log
