"""Online error-budget accounting in simulated time.

The :class:`BurnRateAccountant` folds the run-event stream into per-
dimension budget states: elapsed job time against the deadline, billed USD
against the budget, per-SHA-stage spend against sub-budgets. Projection
uses the online predictor's remaining-epoch estimate (published by the
adaptive scheduler through ``plan_chosen`` / ``predictor_update`` events)
times the mean wall time of a trailing epoch window — so a deadline miss
is forecast *while the run can still react*, not post-mortem.

Classification ladder per dimension, strongest wins:

* ``exhausted`` — consumed >= limit (the SLO is already violated);
* ``critical``  — the projected completion overshoots the limit;
* ``warn``      — consumption passed ``warn_ratio``, or the windowed burn
  rate exceeds 1x with meaningful consumption behind it;
* ``ok``        — everything else.

All arithmetic is over simulated quantities; nothing here reads the host
clock or consumes randomness. Since the event-kernel unification the
accountant holds no clock of its own either: the ``t_s`` values arriving
via :meth:`BurnRateAccountant.observe_clock` are readings of the kernel's
*job clock* (``EventKernel.job_clock_s`` — overhead-credited job time, the
quantity SLOs are written against), not its *event clock* (``EventKernel
.now`` — raw dispatch time, which also advances through retries and
backoffs that delayed-restart accounting keeps off the critical path).
The per-scope high-water marks below only fold readings from those
kernel clocks; see docs/kernel.md for the two clock domains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.slo.spec import SLOSpec

#: Budget states, in increasing order of concern.
STATUSES = ("ok", "warn", "critical", "exhausted")


@dataclass(frozen=True, slots=True)
class BudgetState:
    """One dimension's error-budget position at a point in the run.

    ``limit``/``consumed``/``projected`` share the dimension's unit
    (seconds for ``deadline``, USD for ``budget`` and ``stage:N``).
    """

    dimension: str
    limit: float
    consumed: float
    projected: float | None
    burn_rate: float | None
    status: str

    @property
    def fraction(self) -> float:
        """Consumed fraction of the limit."""
        return self.consumed / self.limit if self.limit > 0 else 0.0


@dataclass
class BurnRateAccountant:
    """Folds run events into live :class:`BudgetState`s for one spec.

    Attributes:
        spec: the SLO being accounted against.
        window: trailing epochs used for the projection's per-epoch rate.
        min_burn_fraction: consumption fraction below which the windowed
            burn-rate signal is ignored (early-run noise suppression).
    """

    spec: SLOSpec
    window: int = 5
    min_burn_fraction: float = 0.1

    def __post_init__(self) -> None:
        self.billed_usd = 0.0
        self.epochs_done = 0
        self.predicted_total_epochs: float | None = None
        self._clock_s: dict[str, float] = {}
        self._stage_spend_usd: dict[int, float] = {}
        self._recent_wall_s: list[float] = []
        self._recent_cost_usd: list[float] = []

    # ------------------------------------------------------------------ intake
    @property
    def elapsed_s(self) -> float:
        """Total simulated job time: the sum of each scope's clock high-water
        mark (a workflow's tuning and training phases keep separate clocks)."""
        return sum(self._clock_s[scope] for scope in sorted(self._clock_s))

    def observe_clock(self, scope: str, t_s: float) -> None:
        """Advance one scope's job-time high-water mark."""
        self._clock_s[scope] = max(self._clock_s.get(scope, 0.0), t_s)

    def on_epoch(self, wall_s: float, cost_usd: float) -> None:
        """Account one finished training epoch."""
        self.epochs_done += 1
        self.billed_usd += cost_usd
        self._recent_wall_s.append(wall_s)
        self._recent_cost_usd.append(cost_usd)
        del self._recent_wall_s[: -self.window]
        del self._recent_cost_usd[: -self.window]

    def on_stage(self, stage: int, cost_usd: float) -> None:
        """Account one finished SHA tuning stage."""
        self.billed_usd += cost_usd
        self._stage_spend_usd[stage] = (
            self._stage_spend_usd.get(stage, 0.0) + cost_usd
        )

    def on_prediction(self, predicted_total_epochs: float) -> None:
        """Adopt the online predictor's latest total-epoch horizon."""
        self.predicted_total_epochs = float(predicted_total_epochs)

    # ------------------------------------------------------------------ derived
    @property
    def remaining_epochs(self) -> float | None:
        """Epochs the predictor still expects, or None before any estimate."""
        if self.predicted_total_epochs is None:
            return None
        return max(0.0, self.predicted_total_epochs - self.epochs_done)

    @property
    def progress(self) -> float | None:
        """Fraction of the predicted horizon already completed."""
        if self.predicted_total_epochs is None or self.predicted_total_epochs <= 0:
            return None
        return min(1.0, self.epochs_done / self.predicted_total_epochs)

    def projected_jct_s(self) -> float | None:
        """Forecast completion time: elapsed + remaining x recent epoch rate."""
        remaining = self.remaining_epochs
        if remaining is None or not self._recent_wall_s:
            return None
        mean_wall = sum(self._recent_wall_s) / len(self._recent_wall_s)
        return self.elapsed_s + remaining * mean_wall

    def projected_cost_usd(self) -> float | None:
        """Forecast total spend: billed + remaining x recent epoch cost."""
        remaining = self.remaining_epochs
        if remaining is None or not self._recent_cost_usd:
            return None
        mean_cost = sum(self._recent_cost_usd) / len(self._recent_cost_usd)
        return self.billed_usd + remaining * mean_cost

    def _burn_rate(self, consumed: float, limit: float) -> float | None:
        """Budget fraction consumed per unit of predicted progress; a value
        above 1 means the run is on pace to overshoot the limit."""
        progress = self.progress
        if progress is None or progress <= 0 or limit <= 0:
            return None
        return (consumed / limit) / progress

    def _classify(
        self,
        consumed: float,
        limit: float,
        projected: float | None,
        burn_rate: float | None,
    ) -> str:
        if consumed >= limit:
            return "exhausted"
        if projected is not None and projected > limit:
            return "critical"
        if consumed > self.spec.warn_ratio * limit:
            return "warn"
        if (
            burn_rate is not None
            and burn_rate > 1.0
            and consumed >= self.min_burn_fraction * limit
        ):
            return "warn"
        return "ok"

    def states(self) -> tuple[BudgetState, ...]:
        """Current :class:`BudgetState` per declared dimension, in the fixed
        order deadline, budget, stage sub-budgets by index."""
        out: list[BudgetState] = []
        if self.spec.deadline_s is not None:
            consumed = self.elapsed_s
            projected = self.projected_jct_s()
            rate = self._burn_rate(consumed, self.spec.deadline_s)
            out.append(
                BudgetState(
                    dimension="deadline",
                    limit=self.spec.deadline_s,
                    consumed=consumed,
                    projected=projected,
                    burn_rate=rate,
                    status=self._classify(
                        consumed, self.spec.deadline_s, projected, rate
                    ),
                )
            )
        if self.spec.budget_usd is not None:
            consumed = self.billed_usd
            projected = self.projected_cost_usd()
            rate = self._burn_rate(consumed, self.spec.budget_usd)
            out.append(
                BudgetState(
                    dimension="budget",
                    limit=self.spec.budget_usd,
                    consumed=consumed,
                    projected=projected,
                    burn_rate=rate,
                    status=self._classify(
                        consumed, self.spec.budget_usd, projected, rate
                    ),
                )
            )
        for stage, limit_usd in self.spec.stage_budgets_usd:
            consumed = self._stage_spend_usd.get(stage, 0.0)
            out.append(
                BudgetState(
                    dimension=f"stage:{stage}",
                    limit=limit_usd,
                    consumed=consumed,
                    projected=None,
                    burn_rate=None,
                    status=self._classify(consumed, limit_usd, None, None),
                )
            )
        return tuple(out)
