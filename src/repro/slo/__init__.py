"""Online QoS/SLO guard: specs, burn-rate accounting, alerts, event log.

The package watches whether a run is *on track* to meet its deadline and
budget while it executes, instead of reporting misses post-mortem:

* :mod:`repro.slo.spec` — declarative :class:`SLOSpec` (``repro-slo/v1``);
* :mod:`repro.slo.events` — the hook bus executors publish into, and the
  append-only ``repro-events/v1`` JSONL :class:`EventLog`;
* :mod:`repro.slo.burnrate` — error-budget accounting in simulated time
  with projected completion from the online predictor;
* :mod:`repro.slo.alerts` — threshold + burn-rate rules with a
  deterministic fire/resolve lifecycle;
* :mod:`repro.slo.guard` — :class:`SLOGuard` wires it together;
  :class:`SLOSession` installs it around a run;
* :mod:`repro.slo.report` — ``repro-slo-report/v1`` evaluation reports.

Everything runs on simulated clocks only; a guard-off run is byte-
identical to one where this package does not exist.
"""

from repro.slo.alerts import RULES, Alert, AlertEngine, AlertRule
from repro.slo.burnrate import STATUSES, BudgetState, BurnRateAccountant
from repro.slo.events import (
    EVENT_KINDS,
    EVENTS_SCHEMA,
    Event,
    EventBus,
    EventLog,
    NullEventBus,
    get_event_bus,
    set_event_bus,
)
from repro.slo.guard import SLOGuard, SLOSession
from repro.slo.report import (
    REPORT_SCHEMA,
    ObjectiveResult,
    SLOReport,
    error_budget_findings,
    evaluate_guard,
    evaluate_summary,
    replay_events,
)
from repro.slo.spec import SLO_SCHEMA, SLOSpec

__all__ = [
    "EVENT_KINDS",
    "EVENTS_SCHEMA",
    "REPORT_SCHEMA",
    "RULES",
    "SLO_SCHEMA",
    "STATUSES",
    "Alert",
    "AlertEngine",
    "AlertRule",
    "BudgetState",
    "BurnRateAccountant",
    "Event",
    "EventBus",
    "EventLog",
    "NullEventBus",
    "ObjectiveResult",
    "SLOGuard",
    "SLOReport",
    "SLOSession",
    "SLOSpec",
    "error_budget_findings",
    "evaluate_guard",
    "evaluate_summary",
    "get_event_bus",
    "replay_events",
    "set_event_bus",
]
