"""Run diagnostics: critical path, stragglers, model drift, ex-post regret.

The engine turns a finished run — live (:class:`TrainingRun`) or captured
(telemetry JSON + Chrome trace) — into structured, deterministic findings:

>>> from repro.diagnostics import RunObservation, diagnose
>>> from repro.workflow import run_training
>>> run = run_training("lr-higgs", budget_usd=2.0)        # doctest: +SKIP
>>> report = diagnose(RunObservation.from_training_run(run))  # doctest: +SKIP
>>> print(report.render())                                # doctest: +SKIP
"""

from repro.diagnostics.critical_path import (
    COMPONENT_ORDER,
    BottleneckSpan,
    ComponentShare,
    CriticalPathAnalysis,
    RestartOverheadSplit,
    analyze_critical_path,
)
from repro.diagnostics.drift import DriftAudit, DriftPoint, audit_model_drift
from repro.diagnostics.engine import (
    JSON_SCHEMA,
    DiagnosticsReport,
    Finding,
    diagnose,
)
from repro.diagnostics.regret import RegretAudit, RegretPoint, audit_regret
from repro.diagnostics.stragglers import (
    StragglerAnalysis,
    StragglerFinding,
    detect_stragglers,
)
from repro.diagnostics.timeline import EpochObservation, RunObservation

__all__ = [
    "COMPONENT_ORDER",
    "JSON_SCHEMA",
    "BottleneckSpan",
    "ComponentShare",
    "CriticalPathAnalysis",
    "DiagnosticsReport",
    "DriftAudit",
    "DriftPoint",
    "EpochObservation",
    "Finding",
    "RegretAudit",
    "RegretPoint",
    "RestartOverheadSplit",
    "RunObservation",
    "StragglerAnalysis",
    "StragglerFinding",
    "analyze_critical_path",
    "audit_model_drift",
    "audit_regret",
    "detect_stragglers",
    "diagnose",
]
