"""Ex-post regret: were the scheduler's allocation choices right in hindsight?

Algorithm 2 selects allocations against a *predicted* epoch horizon. Once
the run is over the true horizon is known, so every decision can be
re-evaluated: given the epochs that actually remained and the budget (or
deadline slack) actually left at that point, which Pareto point 𝒫 would
:func:`~repro.training.adaptive_scheduler.select_best_allocation` have
picked? The gap between the chosen and hindsight-best point, integrated
over the epochs the choice governed, is the decision's regret.

Regret here isolates *prediction* error from *selection* error: the same
selection rule is replayed with perfect information, so any gap is
attributable to the online predictor's horizon estimate (or to a baseline
scheduler's cruder policy), not to the greedy selection itself.

Time and cost regret are reported separately; under a single-objective
constraint one of them can legitimately be negative (e.g. the chosen point
was slower but cheaper than the hindsight-best under a JCT objective).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConstraintError, InfeasibleAllocationError
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.analytical.costmodel import epoch_cost
from repro.analytical.pareto import ProfiledAllocation
from repro.analytical.timemodel import epoch_time
from repro.diagnostics.timeline import RunObservation
from repro.ml.models import Workload, workload as lookup_workload
from repro.training.adaptive_scheduler import select_best_allocation
from repro.tuning.plan import Objective


@dataclass(frozen=True, slots=True)
class RegretPoint:
    """One scheduling decision, re-judged with the observed horizon."""

    decided_before_epoch: int  # the first epoch the decision governed
    segment_epochs: int  # how many epochs ran under it
    remaining_epochs: int  # true remaining horizon at decision time
    chosen: str
    hindsight_best: str
    chosen_epoch_time_s: float
    best_epoch_time_s: float
    chosen_epoch_cost_usd: float
    best_epoch_cost_usd: float
    time_regret_s: float  # (chosen - best) epoch time × segment length
    cost_regret_usd: float

    @property
    def optimal(self) -> bool:
        return self.chosen == self.hindsight_best


@dataclass(frozen=True, slots=True)
class RegretAudit:
    """All decision regrets for one run."""

    points: tuple[RegretPoint, ...]
    objective: Objective
    total_time_regret_s: float
    total_cost_regret_usd: float
    decisions_optimal: int
    skipped: int  # decisions that could not be re-evaluated

    @property
    def decisions_total(self) -> int:
        return len(self.points)


def audit_regret(
    obs: RunObservation,
    candidates: list[ProfiledAllocation],
    workload: Workload | str | None = None,
    platform: PlatformConfig = DEFAULT_PLATFORM,
) -> RegretAudit:
    """Re-judge every allocation decision against the observed horizon.

    Decisions are the initial selection plus every epoch where the
    allocation changed. Each is replayed through the paper's own
    ``select_best_allocation`` with the *true* remaining epoch count and
    the budget/deadline slack actually left at that point.
    """
    if obs.objective is None:
        raise ConstraintError("observation carries no objective; cannot audit regret")
    if not candidates:
        raise ConstraintError("regret audit needs a non-empty candidate set")
    if isinstance(workload, str):
        workload = lookup_workload(workload)
    elif workload is None and obs.workload_name:
        workload = lookup_workload(obs.workload_name)
    epochs = obs.epochs
    total = len(epochs)
    by_alloc = {p.allocation: p for p in candidates}

    # Decision boundaries: epoch positions (0-based) whose allocation
    # differs from the previous epoch's, plus position 0.
    boundaries = [
        i
        for i, e in enumerate(epochs)
        if i == 0 or e.alloc_label.split("#")[0] != epochs[i - 1].alloc_label.split("#")[0]
    ]
    points: list[RegretPoint] = []
    skipped = 0
    time_total = cost_total = 0.0
    optimal = 0
    for b_idx, start in enumerate(boundaries):
        end = boundaries[b_idx + 1] if b_idx + 1 < len(boundaries) else total
        segment = end - start
        remaining = total - start
        spent = sum(e.cost_usd or 0.0 for e in epochs[:start])
        elapsed = sum(e.wall_s for e in epochs[:start])
        budget_rem = (
            max(0.0, obs.budget_usd - spent) if obs.budget_usd is not None else None
        )
        qos_rem = max(0.0, obs.qos_s - elapsed) if obs.qos_s is not None else None
        chosen_point = _resolve_point(
            epochs[start].allocation, by_alloc, workload, platform
        )
        if chosen_point is None:
            skipped += 1
            continue
        try:
            best = select_best_allocation(
                candidates,
                obs.objective,
                float(remaining),
                budget_usd=budget_rem,
                qos_s=qos_rem,
            )
        except ConstraintError:
            skipped += 1
            continue
        time_regret = segment * (chosen_point.time_s - best.time_s)
        cost_regret = segment * (chosen_point.cost_usd - best.cost_usd)
        point = RegretPoint(
            decided_before_epoch=epochs[start].index,
            segment_epochs=segment,
            remaining_epochs=remaining,
            chosen=chosen_point.allocation.describe(),
            hindsight_best=best.allocation.describe(),
            chosen_epoch_time_s=chosen_point.time_s,
            best_epoch_time_s=best.time_s,
            chosen_epoch_cost_usd=chosen_point.cost_usd,
            best_epoch_cost_usd=best.cost_usd,
            time_regret_s=time_regret,
            cost_regret_usd=cost_regret,
        )
        points.append(point)
        time_total += time_regret
        cost_total += cost_regret
        if point.optimal:
            optimal += 1
    return RegretAudit(
        points=tuple(points),
        objective=obs.objective,
        total_time_regret_s=time_total,
        total_cost_regret_usd=cost_total,
        decisions_optimal=optimal,
        skipped=skipped,
    )


def _resolve_point(
    allocation,
    by_alloc: dict,
    workload: Workload | None,
    platform: PlatformConfig,
) -> ProfiledAllocation | None:
    """The chosen allocation as a profiled point, on the candidates' basis.

    Prefers the exact candidate (identical analytical estimates); falls
    back to evaluating Eq. (2)/(4) directly when the chosen θ is not on
    the audited front (e.g. a baseline's storage-pinned pick).
    """
    if allocation is None:
        return None
    if allocation in by_alloc:
        return by_alloc[allocation]
    if workload is None:
        return None
    try:
        t = epoch_time(workload, allocation, platform)
        c = epoch_cost(workload, allocation, platform=platform)
    except InfeasibleAllocationError:
        return None
    return ProfiledAllocation(allocation=allocation, time=t, cost=c)
