"""Critical-path extraction: where did the JCT actually go?

Decomposes a run's job completion time into the six components that can
sit on the critical path — queue wait, cold start, dataset load, gradient
compute, parameter sync, and visible scheduling/restart overhead — and
ranks the individual (epoch, component) spans so the top-k bottlenecks
are immediately visible. Also splits restart overhead into its hidden
(overlapped, Fig. 8) and visible shares, quantifying how much the
delayed-restart mechanism actually saved.

The decomposition is exact for live runs: the six component totals sum to
the JCT (queue + cold + load + compute + sync per epoch equals the epoch's
wall time, and the scheduler's search/restart time is the only other thing
the executor adds to the clock).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.diagnostics.timeline import RunObservation

#: Order in which components appear in reports (roughly: per-epoch
#: lifecycle order, scheduling last).
COMPONENT_ORDER = ("queue", "cold-start", "load", "compute", "sync", "scheduling")


@dataclass(frozen=True, slots=True)
class ComponentShare:
    """One critical-path component's total contribution to JCT."""

    component: str
    seconds: float
    share: float  # fraction of JCT


@dataclass(frozen=True, slots=True)
class BottleneckSpan:
    """A single (epoch, component) span, ranked by duration."""

    epoch: int
    component: str
    allocation: str
    seconds: float
    share: float  # fraction of JCT


@dataclass(frozen=True, slots=True)
class RestartOverheadSplit:
    """Where allocation-switch overhead went (Fig. 8 accounting)."""

    hidden_s: float
    visible_s: float

    @property
    def total_s(self) -> float:
        return self.hidden_s + self.visible_s

    @property
    def hidden_share(self) -> float:
        """Fraction of restart overhead kept off the critical path."""
        return self.hidden_s / self.total_s if self.total_s > 0 else 0.0


@dataclass(frozen=True, slots=True)
class CriticalPathAnalysis:
    """The full JCT decomposition for one run."""

    jct_s: float
    components: tuple[ComponentShare, ...]
    bottlenecks: tuple[BottleneckSpan, ...]
    restart: RestartOverheadSplit
    n_restarts: int

    @property
    def accounted_s(self) -> float:
        """Sum of all component seconds; equals jct_s on live runs."""
        return sum(c.seconds for c in self.components)

    @property
    def dominant(self) -> ComponentShare:
        return max(self.components, key=lambda c: c.seconds)


def analyze_critical_path(obs: RunObservation, top_k: int = 5) -> CriticalPathAnalysis:
    """Decompose the run's JCT and rank its top-k bottleneck spans."""
    totals = {name: 0.0 for name in COMPONENT_ORDER}
    spans: list[BottleneckSpan] = []
    jct = obs.jct_s if obs.jct_s > 0 else 1e-12
    for e in obs.epochs:
        per_epoch = (
            ("queue", e.queue_wait_s),
            ("cold-start", e.cold_start_s),
            ("load", e.load_s),
            ("compute", e.compute_s),
            ("sync", e.sync_s),
        )
        for name, seconds in per_epoch:
            totals[name] += seconds
            if seconds > 0:
                spans.append(
                    BottleneckSpan(
                        epoch=e.index,
                        component=name,
                        allocation=e.alloc_label,
                        seconds=seconds,
                        share=seconds / jct,
                    )
                )
    # The run-level scheduling total (initial search + per-epoch searches +
    # visible restarts) is authoritative; per-epoch records only carry it
    # for restarted epochs.
    totals["scheduling"] = obs.scheduling_overhead_s
    for e in obs.epochs:
        if e.scheduling_overhead_s > 0:
            spans.append(
                BottleneckSpan(
                    epoch=e.index,
                    component="scheduling",
                    allocation=e.alloc_label,
                    seconds=e.scheduling_overhead_s,
                    share=e.scheduling_overhead_s / jct,
                )
            )
    spans.sort(key=lambda s: (-s.seconds, s.epoch, s.component))
    hidden = obs.hidden_restart_s
    visible = obs.visible_restart_s
    if visible is None:
        # No registry capture: approximate with the per-epoch visible
        # overhead recorded on restarted epochs (includes the search time
        # of the restarting decision).
        visible = sum(e.scheduling_overhead_s for e in obs.epochs if e.restarted)
    return CriticalPathAnalysis(
        jct_s=obs.jct_s,
        components=tuple(
            ComponentShare(name, totals[name], totals[name] / jct)
            for name in COMPONENT_ORDER
        ),
        bottlenecks=tuple(spans[:top_k]),
        restart=RestartOverheadSplit(hidden_s=hidden, visible_s=visible),
        n_restarts=obs.n_restarts,
    )
