"""Straggler detection over per-worker gang timings.

Each epoch's gang runs under a BSP barrier, so one slow worker stretches
the whole epoch (the barrier makes the gang's compute window the *max* of
the per-worker durations). The detector compares every worker's body
duration against the gang median using a robust scale estimate — the
median absolute deviation (MAD), scaled by 1.4826 to be σ-consistent under
normality — and flags workers deviating by more than ``z`` such σ.

Robust statistics matter here: a genuine straggler would inflate a plain
mean/stddev enough to hide itself, but barely moves the median/MAD.
The MAD of a small, tight gang can collapse to ~0 (every duration equal up
to float noise), which would flag harmless micro-jitter; a relative floor
(``min_rel_excess`` over the median) suppresses that failure mode.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.diagnostics.timeline import RunObservation

#: σ-consistency constant for MAD under a normal distribution.
_MAD_TO_SIGMA = 1.4826


@dataclass(frozen=True, slots=True)
class StragglerFinding:
    """One worker flagged as a straggler in one epoch."""

    epoch: int
    rank: int
    allocation: str
    duration_s: float
    gang_median_s: float
    deviation_sigma: float

    @property
    def slowdown(self) -> float:
        """How many times slower than the gang median."""
        return self.duration_s / self.gang_median_s if self.gang_median_s > 0 else 0.0


@dataclass(frozen=True, slots=True)
class StragglerAnalysis:
    """All straggler findings for one run."""

    findings: tuple[StragglerFinding, ...]
    z_threshold: float
    epochs_checked: int
    workers_checked: int

    @property
    def worst(self) -> StragglerFinding | None:
        return max(self.findings, key=lambda f: f.slowdown, default=None)

    @property
    def affected_ranks(self) -> tuple[int, ...]:
        return tuple(sorted({f.rank for f in self.findings}))


def detect_stragglers(
    obs: RunObservation,
    z: float = 4.0,
    min_rel_excess: float = 0.25,
) -> StragglerAnalysis:
    """Flag workers deviating > ``z`` robust σ above their gang median.

    ``min_rel_excess`` additionally requires a flagged worker to run at
    least that fraction slower than the median: the compute jitter's
    lognormal tail routinely produces ~1.1x outliers at >4 MAD-σ over
    thousands of worker-epochs, and a sub-25% "straggler" neither moves
    an epoch materially nor warrants an operator's attention.
    """
    findings: list[StragglerFinding] = []
    epochs_checked = 0
    workers_checked = 0
    for e in obs.epochs:
        gang = e.worker_durations_s
        if len(gang) < 3:  # median/MAD meaningless below 3 workers
            continue
        epochs_checked += 1
        workers_checked += len(gang)
        median = statistics.median(gang)
        mad = statistics.median(abs(d - median) for d in gang)
        sigma = max(mad * _MAD_TO_SIGMA, 1e-12)
        for rank, duration in enumerate(gang):
            deviation = (duration - median) / sigma
            if deviation > z and duration > median * (1.0 + min_rel_excess):
                findings.append(
                    StragglerFinding(
                        epoch=e.index,
                        rank=rank,
                        allocation=e.alloc_label,
                        duration_s=duration,
                        gang_median_s=median,
                        deviation_sigma=deviation,
                    )
                )
    return StragglerAnalysis(
        findings=tuple(findings),
        z_threshold=z,
        epochs_checked=epochs_checked,
        workers_checked=workers_checked,
    )
