"""Model-drift audit: replay Eq. (2)-(5) against what actually happened.

For every executed epoch the audit re-evaluates the analytical time and
cost models on the epoch's allocation θ and compares against the measured
breakdown — the same predicted-vs-actual check the paper runs once, for
Fig. 19 (time) and Fig. 20 (cost), turned into a reusable regression
gate. Residuals beyond the drift threshold δ flag the epoch; a drifting
model means the scheduler's selections were made on stale estimates.

The audit compares against :attr:`EpochObservation.model_time_s`
(load + compute + sync), *not* wall time: cold starts and queue waits are
platform effects the analytical t'(θ) deliberately does not model.

When drift is found, the audit also refits the workload's compute
constant from the observed epochs
(:func:`repro.analytical.calibration.fit_compute_constant_from_epochs`),
so the finding comes with an actionable recalibration suggestion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import InfeasibleAllocationError
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.analytical.calibration import fit_compute_constant_from_epochs
from repro.analytical.costmodel import epoch_cost
from repro.analytical.timemodel import epoch_time
from repro.diagnostics.timeline import RunObservation
from repro.ml.models import Workload, workload as lookup_workload


@dataclass(frozen=True, slots=True)
class DriftPoint:
    """Predicted-vs-actual residuals for one epoch."""

    epoch: int
    allocation: str
    predicted_time_s: float
    actual_time_s: float
    predicted_cost_usd: float
    actual_cost_usd: float | None

    @property
    def time_residual(self) -> float:
        """Relative time error |actual - predicted| / predicted (Fig. 19)."""
        return abs(self.actual_time_s - self.predicted_time_s) / max(
            self.predicted_time_s, 1e-12
        )

    @property
    def cost_residual(self) -> float | None:
        """Relative cost error |actual - predicted| / predicted (Fig. 20)."""
        if self.actual_cost_usd is None:
            return None
        return abs(self.actual_cost_usd - self.predicted_cost_usd) / max(
            self.predicted_cost_usd, 1e-12
        )


@dataclass(frozen=True, slots=True)
class DriftAudit:
    """The full model-validation picture for one run."""

    points: tuple[DriftPoint, ...]
    threshold: float
    mean_time_residual: float
    max_time_residual: float
    mean_cost_residual: float
    max_cost_residual: float
    # Residuals of the run-level totals: |Σ actual − Σ predicted| / Σ pred.
    # Jitter averages out here, so these are the Fig. 19/20-comparable
    # numbers and what the drift verdict is based on; single-epoch
    # residuals flag *outlier epochs*, not model drift.
    aggregate_time_residual: float = 0.0
    aggregate_cost_residual: float = 0.0
    flagged: tuple[DriftPoint, ...] = ()
    skipped_epochs: int = 0
    # Recalibration suggestion, present when the run drifted: the compute
    # constant refit from the observed epochs, and the configured value it
    # would replace.
    refit_compute_s_per_mb: float | None = None
    configured_compute_s_per_mb: float | None = None

    @property
    def drifting(self) -> bool:
        """True when the *systematic* (aggregate) residual exceeds δ."""
        return (
            self.aggregate_time_residual > self.threshold
            or self.aggregate_cost_residual > self.threshold
        )


def audit_model_drift(
    obs: RunObservation,
    workload: Workload | str | None = None,
    platform: PlatformConfig = DEFAULT_PLATFORM,
    threshold: float = 0.15,
) -> DriftAudit:
    """Replay each epoch's allocation through the analytical models.

    ``workload`` defaults to the one named in the observation's metadata.
    Epochs whose allocation could not be recovered (unparseable trace
    label) or is infeasible under ``platform`` are counted in
    ``skipped_epochs`` rather than silently dropped.
    """
    if workload is None:
        if not obs.workload_name:
            raise ValueError("observation names no workload; pass one explicitly")
        workload = obs.workload_name
    if isinstance(workload, str):
        workload = lookup_workload(workload)
    points: list[DriftPoint] = []
    skipped = 0
    for e in obs.epochs:
        if e.allocation is None or e.model_time_s <= 0:
            skipped += 1
            continue
        try:
            t_pred = epoch_time(workload, e.allocation, platform)
            c_pred = epoch_cost(workload, e.allocation, platform=platform)
        except InfeasibleAllocationError:
            skipped += 1
            continue
        points.append(
            DriftPoint(
                epoch=e.index,
                allocation=e.alloc_label,
                predicted_time_s=t_pred.total_s,
                actual_time_s=e.model_time_s,
                predicted_cost_usd=c_pred.total_usd,
                actual_cost_usd=e.cost_usd,
            )
        )
    time_residuals = [p.time_residual for p in points]
    cost_residuals = [r for p in points if (r := p.cost_residual) is not None]
    pred_t = sum(p.predicted_time_s for p in points)
    act_t = sum(p.actual_time_s for p in points)
    agg_time = abs(act_t - pred_t) / max(pred_t, 1e-12)
    with_cost = [p for p in points if p.actual_cost_usd is not None]
    pred_c = sum(p.predicted_cost_usd for p in with_cost)
    act_c = sum(p.actual_cost_usd for p in with_cost)
    agg_cost = abs(act_c - pred_c) / max(pred_c, 1e-12) if with_cost else 0.0
    flagged = tuple(
        p
        for p in points
        if p.time_residual > threshold
        or (p.cost_residual is not None and p.cost_residual > threshold)
    )
    refit = configured = None
    if agg_time > threshold or agg_cost > threshold:
        calib = fit_compute_constant_from_epochs(
            workload,
            [(e.allocation, e.compute_s) for e in obs.epochs if e.allocation],
            platform=platform,
        )
        if calib is not None:
            refit = calib.compute_s_per_mb
            configured = workload.profile.compute_s_per_mb
    return DriftAudit(
        points=tuple(points),
        threshold=threshold,
        mean_time_residual=_mean(time_residuals),
        max_time_residual=max(time_residuals, default=0.0),
        mean_cost_residual=_mean(cost_residuals),
        max_cost_residual=max(cost_residuals, default=0.0),
        aggregate_time_residual=agg_time,
        aggregate_cost_residual=agg_cost,
        flagged=flagged,
        skipped_epochs=skipped,
        refit_compute_s_per_mb=refit,
        configured_compute_s_per_mb=configured,
    )


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0
