"""Normalized run observations — the diagnostics engine's input.

Every analysis in this package consumes one :class:`RunObservation`: a
per-epoch timeline plus the run's constraint context. Observations are
built from either

* a **live run** (:meth:`RunObservation.from_training_run`) — full
  fidelity, straight from the executor's :class:`EpochRecord`s; or
* a **saved capture** (:meth:`RunObservation.from_capture`) — the JSON
  telemetry document written by ``--telemetry`` plus, optionally, the
  Chrome trace written by ``--trace``, from which the epoch timeline is
  reconstructed span by span.

Reconstruction reads the executor's ``epoch`` spans (track ``epochs``) as
windows and assigns the platform's load/compute/sync/cold/queue/worker
spans to them by containment; scheduler spans attach via their ``epoch``
argument. A trace produced by the post-hoc ``trace_epochs`` reconstruction
(no ``epochs`` track) degrades gracefully to its load/compute/sync spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.types import Allocation, EpochRecord
from repro.tuning.plan import Objective


@dataclass(frozen=True, slots=True)
class EpochObservation:
    """One executed epoch, as seen by the diagnostics engine."""

    index: int
    alloc_label: str
    allocation: Allocation | None
    load_s: float
    compute_s: float
    sync_s: float
    cold_start_s: float
    queue_wait_s: float
    wall_s: float
    loss: float | None = None
    cost_usd: float | None = None
    scheduling_overhead_s: float = 0.0
    hidden_restart_overlap_s: float = 0.0
    restarted: bool = False
    worker_durations_s: tuple[float, ...] = ()

    @property
    def model_time_s(self) -> float:
        """The part of the epoch the analytical t'(θ) models (no cold/queue)."""
        return self.load_s + self.compute_s + self.sync_s


@dataclass
class RunObservation:
    """A full run: epoch timeline + constraint context + overhead totals."""

    epochs: list[EpochObservation]
    jct_s: float
    cost_usd: float | None = None
    meta: dict = field(default_factory=dict)
    workload_name: str | None = None
    objective: Objective | None = None
    budget_usd: float | None = None
    qos_s: float | None = None
    scheduling_overhead_s: float = 0.0
    hidden_restart_s: float = 0.0
    visible_restart_s: float | None = None
    n_restarts: int = 0
    converged: bool | None = None

    # ------------------------------------------------------------------ builders
    @classmethod
    def from_training_run(cls, run, registry=None) -> "RunObservation":
        """Full-fidelity observation from a live :class:`TrainingRun`.

        ``registry`` (a :class:`MetricsRegistry` that was installed while
        the run executed) supplies the hidden/visible restart split; without
        it the hidden side still comes from the epoch records.
        """
        result = run.result
        epochs = [_epoch_from_record(r) for r in result.epochs]
        hidden = sum(r.hidden_restart_overlap_s for r in result.epochs)
        visible = _counter_value(registry, "repro_scheduler_restart_visible_seconds_total")
        w = getattr(run, "workload", None)
        return cls(
            epochs=epochs,
            jct_s=result.jct_s,
            cost_usd=result.cost_usd,
            meta={
                "method": run.method,
                "workload": w.name if w is not None else "",
                "seed": getattr(run, "seed", 0),
            },
            workload_name=w.name if w is not None else None,
            objective=getattr(run, "objective", None),
            budget_usd=getattr(run, "budget_usd", None),
            qos_s=getattr(run, "qos_s", None),
            scheduling_overhead_s=result.scheduling_overhead_s,
            hidden_restart_s=hidden,
            visible_restart_s=visible,
            n_restarts=result.n_restarts,
            converged=result.converged,
        )

    @classmethod
    def from_capture(
        cls, telemetry: dict, trace: dict | None = None
    ) -> "RunObservation":
        """Observation from a saved telemetry JSON (+ optional Chrome trace)."""
        run = dict(telemetry.get("run", {}))
        meta = dict(telemetry.get("meta", {}))
        metrics = _metric_totals(telemetry.get("metrics", []))
        epochs: list[EpochObservation] = []
        if trace is not None:
            epochs = _epochs_from_trace(trace)
        objective = None
        if run.get("objective"):
            objective = Objective(run["objective"])
        jct = float(run.get("jct_s", 0.0))
        if jct == 0.0 and epochs:
            jct = sum(e.wall_s + e.scheduling_overhead_s for e in epochs)
        return cls(
            epochs=epochs,
            jct_s=jct,
            cost_usd=run.get("cost_usd"),
            meta=meta,
            workload_name=meta.get("workload") or None,
            objective=objective,
            budget_usd=run.get("budget_usd"),
            qos_s=run.get("qos_s"),
            scheduling_overhead_s=float(run.get("scheduling_overhead_s", 0.0)),
            hidden_restart_s=metrics.get(
                "repro_scheduler_restart_hidden_seconds_total", 0.0
            ),
            visible_restart_s=metrics.get(
                "repro_scheduler_restart_visible_seconds_total"
            ),
            n_restarts=int(run.get("n_restarts", 0)),
            converged=run.get("converged"),
        )


# --------------------------------------------------------------------------- helpers
def _epoch_from_record(r: EpochRecord) -> EpochObservation:
    return EpochObservation(
        index=r.index,
        alloc_label=r.allocation.describe(),
        allocation=r.allocation,
        load_s=r.time.load_s,
        compute_s=r.time.compute_s,
        sync_s=r.time.sync_s,
        cold_start_s=r.cold_start_s,
        queue_wait_s=r.queue_wait_s,
        wall_s=r.wall_s,
        loss=r.loss,
        cost_usd=r.cost.total_usd,
        scheduling_overhead_s=r.scheduling_overhead_s,
        hidden_restart_overlap_s=r.hidden_restart_overlap_s,
        restarted=r.restarted,
        worker_durations_s=tuple(r.worker_durations_s),
    )


def _counter_value(registry, name: str) -> float | None:
    if registry is None:
        return None
    metric = registry.get(name)
    if metric is None:
        return None
    return float(metric.value)


def _metric_totals(metrics: list[dict]) -> dict[str, float]:
    """Summed sample values per family from a telemetry JSON payload."""
    out: dict[str, float] = {}
    for entry in metrics:
        if entry.get("type") == "histogram":
            total = sum(float(s.get("sum", 0.0)) for s in entry.get("samples", []))
        else:
            total = sum(float(s.get("value", 0.0)) for s in entry.get("samples", []))
        out[entry["name"]] = total
    return out


def _chrome_spans(trace: dict) -> list[dict]:
    """Normalize Chrome trace events to second-based span dicts."""
    events = trace.get("traceEvents", [])
    tracks = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    spans = []
    for e in events:
        if e.get("ph") != "X":
            continue
        spans.append(
            {
                "name": e.get("name", ""),
                "cat": e.get("cat", ""),
                "start_s": float(e.get("ts", 0.0)) / 1e6,
                "duration_s": float(e.get("dur", 0.0)) / 1e6,
                "track": tracks.get(e.get("tid"), str(e.get("tid"))),
                "args": dict(e.get("args", {})),
            }
        )
    spans.sort(key=lambda s: (s["start_s"], s["track"], s["name"]))
    return spans


def _parse_alloc(label: str) -> Allocation | None:
    try:
        return Allocation.parse(label)
    except ValidationError:
        return None


def _epochs_from_trace(trace: dict) -> list[EpochObservation]:
    spans = _chrome_spans(trace)
    windows = [s for s in spans if s["cat"] == "epoch"]
    if windows:
        return _epochs_from_windows(spans, windows)
    return _epochs_from_args(spans)


def _epochs_from_windows(
    spans: list[dict], windows: list[dict]
) -> list[EpochObservation]:
    """Reconstruct epochs from executor ``epoch`` spans + contained spans."""
    sched = _scheduling_by_epoch(spans)
    out: list[EpochObservation] = []
    eps = 1e-9
    for w in sorted(windows, key=lambda s: s["start_s"]):
        idx = int(w["args"].get("epoch", len(out) + 1))
        t0, t1 = w["start_s"], w["start_s"] + w["duration_s"]
        inside = [
            s
            for s in spans
            if s["cat"] in ("load", "compute", "sync", "cold", "queue", "worker")
            and t0 - eps <= s["start_s"] < t1 - eps
        ]
        by_cat: dict[str, float] = {}
        for s in inside:
            by_cat[s["cat"]] = by_cat.get(s["cat"], 0.0) + s["duration_s"]
        workers = sorted(
            (s for s in inside if s["cat"] == "worker"),
            key=lambda s: int(s["args"].get("rank", 0)),
        )
        label = str(w["args"].get("allocation", ""))
        visible_s, hidden_s, restarted = sched.get(idx, (0.0, 0.0, False))
        out.append(
            EpochObservation(
                index=idx,
                alloc_label=label,
                allocation=_parse_alloc(label) if label else None,
                load_s=by_cat.get("load", 0.0),
                compute_s=by_cat.get("compute", 0.0),
                sync_s=by_cat.get("sync", 0.0),
                cold_start_s=by_cat.get("cold", 0.0),
                queue_wait_s=by_cat.get("queue", 0.0),
                wall_s=w["duration_s"],
                loss=_maybe_float(w["args"].get("loss")),
                cost_usd=_maybe_float(w["args"].get("cost_usd")),
                scheduling_overhead_s=visible_s,
                hidden_restart_overlap_s=hidden_s,
                restarted=restarted,
                worker_durations_s=tuple(s["duration_s"] for s in workers),
            )
        )
    return out


def _epochs_from_args(spans: list[dict]) -> list[EpochObservation]:
    """Fallback for post-hoc traces: group load/compute/sync by epoch arg."""
    per_epoch: dict[int, dict] = {}
    for s in spans:
        if s["cat"] not in ("load", "compute", "sync"):
            continue
        if "epoch" not in s["args"]:
            continue
        idx = int(s["args"]["epoch"])
        entry = per_epoch.setdefault(
            idx, {"load": 0.0, "compute": 0.0, "sync": 0.0, "track": s["track"]}
        )
        entry[s["cat"]] += s["duration_s"]
    sched = _scheduling_by_epoch(spans)
    out = []
    for idx in sorted(per_epoch):
        e = per_epoch[idx]
        label = e["track"].removeprefix("group:")
        visible_s, hidden_s, restarted = sched.get(idx, (0.0, 0.0, False))
        out.append(
            EpochObservation(
                index=idx,
                alloc_label=label,
                allocation=_parse_alloc(label),
                load_s=e["load"],
                compute_s=e["compute"],
                sync_s=e["sync"],
                cold_start_s=0.0,
                queue_wait_s=0.0,
                wall_s=e["load"] + e["compute"] + e["sync"],
                scheduling_overhead_s=visible_s,
                hidden_restart_overlap_s=hidden_s,
                restarted=restarted,
            )
        )
    return out


def _scheduling_by_epoch(spans: list[dict]) -> dict[int, tuple[float, float, bool]]:
    """epoch -> (visible scheduling s, hidden overlap s, restarted) from
    scheduler-track spans, keyed by their ``epoch`` argument."""
    out: dict[int, tuple[float, float, bool]] = {}
    for s in spans:
        if s["cat"] != "scheduling" or "epoch" not in s["args"]:
            continue
        idx = int(s["args"]["epoch"])
        visible, hidden, restarted = out.get(idx, (0.0, 0.0, False))
        if s["args"].get("hidden"):
            hidden += s["duration_s"]
        else:
            visible += s["duration_s"]
            if s["name"] == "restart":
                restarted = True
        out[idx] = (visible, hidden, restarted)
    return out


def _maybe_float(value) -> float | None:
    return None if value is None else float(value)
