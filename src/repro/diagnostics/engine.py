"""The diagnostics engine: one observation in, structured findings out.

:func:`diagnose` runs the four analyses — critical path, stragglers,
model drift, ex-post regret — over a :class:`RunObservation` and distills
them into ranked :class:`Finding`s. The result serializes to a versioned
JSON document (schema ``repro-diagnostics/v1``) and renders as a terminal
table, both deterministic: same run, same report, byte for byte. No
timestamps, no environment — diffable across commits, which is what lets
the regression harness and CI treat a diagnosis as an artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.analytical.pareto import ProfiledAllocation
from repro.common.errors import ConstraintError
from repro.diagnostics.critical_path import (
    COMPONENT_ORDER,
    CriticalPathAnalysis,
    analyze_critical_path,
)
from repro.diagnostics.drift import DriftAudit, audit_model_drift
from repro.diagnostics.regret import RegretAudit, audit_regret
from repro.diagnostics.stragglers import StragglerAnalysis, detect_stragglers
from repro.diagnostics.timeline import RunObservation
from repro.ml.models import Workload, workload as lookup_workload

JSON_SCHEMA = "repro-diagnostics/v1"

#: Finding severities, in increasing order of concern.
SEVERITIES = ("info", "warning")


@dataclass(frozen=True, slots=True)
class Finding:
    """One structured diagnostic conclusion."""

    kind: str  # bottleneck | restart | straggler | model-drift | regret
    severity: str  # one of SEVERITIES
    message: str
    data: dict = field(default_factory=dict)


@dataclass
class DiagnosticsReport:
    """Everything :func:`diagnose` learned about one run."""

    meta: dict
    critical_path: CriticalPathAnalysis
    stragglers: StragglerAnalysis
    drift: DriftAudit | None
    regret: RegretAudit | None
    findings: tuple[Finding, ...]

    # ------------------------------------------------------------------ export
    def to_payload(self) -> dict:
        cp = self.critical_path
        payload: dict = {
            "schema": JSON_SCHEMA,
            "meta": dict(sorted(self.meta.items())),
            "critical_path": {
                "jct_s": _r(cp.jct_s),
                "accounted_s": _r(cp.accounted_s),
                "components": [
                    {"component": c.component, "seconds": _r(c.seconds), "share": _r(c.share)}
                    for c in cp.components
                ],
                "bottlenecks": [
                    {
                        "epoch": b.epoch,
                        "component": b.component,
                        "allocation": b.allocation,
                        "seconds": _r(b.seconds),
                        "share": _r(b.share),
                    }
                    for b in cp.bottlenecks
                ],
                "restart": {
                    "hidden_s": _r(cp.restart.hidden_s),
                    "visible_s": _r(cp.restart.visible_s),
                    "hidden_share": _r(cp.restart.hidden_share),
                },
                "n_restarts": cp.n_restarts,
            },
            "stragglers": {
                "z_threshold": _r(self.stragglers.z_threshold),
                "epochs_checked": self.stragglers.epochs_checked,
                "workers_checked": self.stragglers.workers_checked,
                "findings": [
                    {
                        "epoch": f.epoch,
                        "rank": f.rank,
                        "allocation": f.allocation,
                        "duration_s": _r(f.duration_s),
                        "gang_median_s": _r(f.gang_median_s),
                        "deviation_sigma": _r(f.deviation_sigma),
                        "slowdown": _r(f.slowdown),
                    }
                    for f in self.stragglers.findings
                ],
            },
            "drift": None,
            "regret": None,
            "findings": [
                {
                    "kind": f.kind,
                    "severity": f.severity,
                    "message": f.message,
                    "data": f.data,
                }
                for f in self.findings
            ],
        }
        if self.drift is not None:
            d = self.drift
            payload["drift"] = {
                "threshold": _r(d.threshold),
                "drifting": d.drifting,
                "mean_time_residual": _r(d.mean_time_residual),
                "max_time_residual": _r(d.max_time_residual),
                "mean_cost_residual": _r(d.mean_cost_residual),
                "max_cost_residual": _r(d.max_cost_residual),
                "aggregate_time_residual": _r(d.aggregate_time_residual),
                "aggregate_cost_residual": _r(d.aggregate_cost_residual),
                "outlier_epochs": [p.epoch for p in d.flagged],
                "skipped_epochs": d.skipped_epochs,
                "refit_compute_s_per_mb": _r(d.refit_compute_s_per_mb),
                "configured_compute_s_per_mb": _r(d.configured_compute_s_per_mb),
                "points": [
                    {
                        "epoch": p.epoch,
                        "allocation": p.allocation,
                        "predicted_time_s": _r(p.predicted_time_s),
                        "actual_time_s": _r(p.actual_time_s),
                        "time_residual": _r(p.time_residual),
                        "predicted_cost_usd": _r(p.predicted_cost_usd),
                        "actual_cost_usd": _r(p.actual_cost_usd),
                        "cost_residual": _r(p.cost_residual),
                    }
                    for p in d.points
                ],
            }
        if self.regret is not None:
            r = self.regret
            payload["regret"] = {
                "objective": r.objective.value,
                "decisions_total": r.decisions_total,
                "decisions_optimal": r.decisions_optimal,
                "skipped": r.skipped,
                "total_time_regret_s": _r(r.total_time_regret_s),
                "total_cost_regret_usd": _r(r.total_cost_regret_usd),
                "points": [
                    {
                        "decided_before_epoch": p.decided_before_epoch,
                        "segment_epochs": p.segment_epochs,
                        "remaining_epochs": p.remaining_epochs,
                        "chosen": p.chosen,
                        "hindsight_best": p.hindsight_best,
                        "time_regret_s": _r(p.time_regret_s),
                        "cost_regret_usd": _r(p.cost_regret_usd),
                    }
                    for p in r.points
                ],
            }
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"

    # ------------------------------------------------------------------ rendering
    def render(self) -> str:
        lines: list[str] = []
        header = " ".join(
            f"{k}={self.meta[k]}"
            for k in ("workload", "method", "seed")
            if k in self.meta and self.meta[k] != ""
        )
        lines.append(f"diagnostics{': ' + header if header else ''}")
        cp = self.critical_path
        lines.append("")
        lines.append(f"critical path (JCT {cp.jct_s:.3f} s)")
        width = max(len(name) for name in COMPONENT_ORDER)
        for c in cp.components:
            lines.append(
                f"  {c.component.ljust(width)}  {c.seconds:12.3f} s  ({c.share * 100.0:5.1f}%)"
            )
        lines.append(
            f"  restarts: {cp.n_restarts}  overhead hidden {cp.restart.hidden_s:.3f} s"
            f" / visible {cp.restart.visible_s:.3f} s"
            f"  ({cp.restart.hidden_share * 100.0:.1f}% hidden)"
        )
        if cp.bottlenecks:
            lines.append("")
            lines.append("top bottleneck spans")
            for b in cp.bottlenecks:
                lines.append(
                    f"  epoch {b.epoch:4d}  {b.component.ljust(width)}"
                    f"  {b.seconds:10.3f} s  ({b.share * 100.0:5.1f}%)  {b.allocation}"
                )
        lines.append("")
        s = self.stragglers
        lines.append(
            f"stragglers: {len(s.findings)} flagged"
            f" ({s.workers_checked} workers over {s.epochs_checked} epochs, z={s.z_threshold:g})"
        )
        for f in s.findings[:10]:
            lines.append(
                f"  epoch {f.epoch:4d}  rank {f.rank:3d}  {f.duration_s:.3f} s"
                f" vs median {f.gang_median_s:.3f} s  ({f.slowdown:.2f}x, {f.deviation_sigma:.1f}σ)"
            )
        if len(s.findings) > 10:
            lines.append(f"  ... and {len(s.findings) - 10} more")
        if self.drift is not None:
            d = self.drift
            lines.append("")
            lines.append(
                f"model drift (δ={d.threshold:g}):"
                f" aggregate residual time {d.aggregate_time_residual * 100.0:.2f}%"
                f" / cost {d.aggregate_cost_residual * 100.0:.2f}%"
                f"  [per-epoch mean time {d.mean_time_residual * 100.0:.2f}%,"
                f" cost {d.mean_cost_residual * 100.0:.2f}%]"
            )
            if d.flagged:
                lines.append(
                    f"  {len(d.flagged)} outlier epoch(s) beyond δ: "
                    + ", ".join(str(p.epoch) for p in d.flagged[:12])
                )
            if d.refit_compute_s_per_mb is not None:
                lines.append(
                    f"  suggested recalibration: compute_s_per_mb"
                    f" {d.configured_compute_s_per_mb:.6f} -> {d.refit_compute_s_per_mb:.6f}"
                )
        if self.regret is not None:
            r = self.regret
            lines.append("")
            lines.append(
                f"ex-post regret ({r.objective.value}):"
                f" {r.decisions_optimal}/{r.decisions_total} decisions hindsight-optimal,"
                f" time regret {r.total_time_regret_s:+.3f} s,"
                f" cost regret {r.total_cost_regret_usd:+.6f} USD"
            )
            for p in r.points:
                mark = "=" if p.optimal else "≠"
                lines.append(
                    f"  epoch {p.decided_before_epoch:4d} ({p.segment_epochs} epochs)"
                    f"  chose {p.chosen} {mark} best {p.hindsight_best}"
                )
        lines.append("")
        lines.append(f"findings ({len(self.findings)})")
        for f in self.findings:
            lines.append(f"  [{f.severity}] {f.kind}: {f.message}")
        return "\n".join(lines)


# ---------------------------------------------------------------------- engine
def diagnose(
    obs: RunObservation,
    workload: Workload | str | None = None,
    platform: PlatformConfig = DEFAULT_PLATFORM,
    candidates: list[ProfiledAllocation] | None = None,
    top_k: int = 5,
    z: float = 4.0,
    drift_threshold: float = 0.15,
    slo_spec=None,
    faults: dict | None = None,
    timeseries: dict | None = None,
) -> DiagnosticsReport:
    """Run every applicable analysis over one observation.

    Analyses degrade gracefully: drift needs a workload (named in the
    observation or passed explicitly), regret additionally needs an
    objective and a candidate set (re-profiled from the workload when not
    supplied). Critical path and straggler detection always run. With an
    ``slo_spec`` (:class:`repro.slo.SLOSpec`), error-budget consumption is
    attributed to critical-path components as extra findings. With a
    ``faults`` summary (a fault ledger's :meth:`~repro.faults.FaultLedger.
    summary`, e.g. ``result.extra["faults"]``), the JCT lost to injected
    faults versus spent on recovery is attributed as findings too. With a
    ``timeseries`` capture (a ``repro-timeseries/v1`` document), the
    EWMA/MAD anomaly rules — storage saturation, warm-pool collapse,
    concurrency plateau, budget-burn knee — contribute their findings.
    """
    if isinstance(workload, str):
        workload = lookup_workload(workload)
    elif workload is None and obs.workload_name:
        workload = lookup_workload(obs.workload_name)

    critical_path = analyze_critical_path(obs, top_k=top_k)
    stragglers = detect_stragglers(obs, z=z)

    drift: DriftAudit | None = None
    if workload is not None and obs.epochs:
        drift = audit_model_drift(
            obs, workload=workload, platform=platform, threshold=drift_threshold
        )

    regret: RegretAudit | None = None
    if obs.objective is not None and obs.epochs:
        if candidates is None and workload is not None:
            from repro.workflow.runner import profile_workload

            candidates = profile_workload(workload, platform=platform).candidates
        if candidates:
            try:
                regret = audit_regret(
                    obs, candidates, workload=workload, platform=platform
                )
            except ConstraintError:
                regret = None

    findings = _distill(obs, critical_path, stragglers, drift, regret)
    extra: tuple[Finding, ...] = ()
    if faults:
        extra += _fault_findings(faults, obs.jct_s)
    if slo_spec is not None:
        from repro.slo.report import error_budget_findings

        extra += error_budget_findings(
            slo_spec, critical_path, obs.jct_s, obs.cost_usd
        )
    if timeseries is not None:
        from repro.timeseries import detect_anomalies

        extra += tuple(
            Finding(
                kind="anomaly",
                severity=a.severity,
                message=a.message,
                data={
                    "rule": a.rule,
                    "series": a.series,
                    "t_s": _r(a.t_s),
                    **a.data,
                },
            )
            for a in detect_anomalies(timeseries)
        )
    if extra:
        order = {"warning": 0, "info": 1}
        findings = tuple(
            sorted(
                findings + extra,
                key=lambda f: (order[f.severity], f.kind, f.message),
            )
        )
    return DiagnosticsReport(
        meta=dict(obs.meta),
        critical_path=critical_path,
        stragglers=stragglers,
        drift=drift,
        regret=regret,
        findings=findings,
    )


def _fault_findings(summary: dict, jct_s: float) -> tuple[Finding, ...]:
    """Attribute JCT lost to injected faults vs spent on recovery."""
    findings: list[Finding] = []
    n_faults = int(summary.get("n_faults", 0))
    lost_s = float(summary.get("fault_time_s", 0.0))
    recovery_s = float(summary.get("recovery_time_s", 0.0))
    share = (lost_s + recovery_s) / jct_s if jct_s > 0 else 0.0
    findings.append(
        Finding(
            kind="faults",
            severity="warning" if share > 0.25 else "info",
            message=(
                f"{n_faults} injected fault(s): {lost_s:.3f} s of work lost "
                f"to faults plus {recovery_s:.3f} s of recovery overhead "
                f"(cumulative across workers; {share * 100.0:.1f}% of "
                "wall-clock JCT)"
            ),
            data={k: v for k, v in sorted(summary.items()) if k != "records"},
        )
    )
    restores = int(summary.get("checkpoint_restores", 0))
    if restores:
        findings.append(
            Finding(
                kind="faults",
                severity="info",
                message=(
                    f"{restores} checkpoint restore(s) re-ran only the lost "
                    f"epoch(s), {float(summary.get('restore_overhead_s', 0.0)):.3f} s "
                    "of restore overhead"
                ),
                data={"checkpoint_restores": restores},
            )
        )
    degraded = int(summary.get("degraded_allocations", 0))
    if degraded:
        findings.append(
            Finding(
                kind="faults",
                severity="warning",
                message=(
                    f"permanent capacity loss forced {degraded} re-selection(s) "
                    "from the Pareto boundary (degraded allocation)"
                ),
                data={"degraded_allocations": degraded},
            )
        )
    return tuple(findings)


def _distill(
    obs: RunObservation,
    cp: CriticalPathAnalysis,
    stragglers: StragglerAnalysis,
    drift: DriftAudit | None,
    regret: RegretAudit | None,
) -> tuple[Finding, ...]:
    """Turn the raw analyses into ranked findings (warnings first)."""
    findings: list[Finding] = []
    if obs.epochs:
        dom = cp.dominant
        findings.append(
            Finding(
                kind="bottleneck",
                severity="info",
                message=(
                    f"{dom.component} dominates the critical path"
                    f" ({dom.seconds:.3f} s, {dom.share * 100.0:.1f}% of JCT)"
                ),
                data={"component": dom.component, "share": _r(dom.share)},
            )
        )
        sched = next(c for c in cp.components if c.component == "scheduling")
        if sched.share > 0.10:
            findings.append(
                Finding(
                    kind="bottleneck",
                    severity="warning",
                    message=(
                        f"scheduling overhead is {sched.share * 100.0:.1f}% of JCT"
                        " — consider Pareto pruning or a larger δ"
                    ),
                    data={"share": _r(sched.share)},
                )
            )
        queue = next(c for c in cp.components if c.component == "queue")
        if queue.share > 0.05:
            findings.append(
                Finding(
                    kind="bottleneck",
                    severity="warning",
                    message=(
                        f"gang queue wait is {queue.share * 100.0:.1f}% of JCT"
                        " — the account concurrency limit is binding"
                    ),
                    data={"share": _r(queue.share)},
                )
            )
    if cp.restart.total_s > 0:
        severity = "info" if cp.restart.hidden_share >= 0.5 else "warning"
        findings.append(
            Finding(
                kind="restart",
                severity=severity,
                message=(
                    f"{cp.n_restarts} restart(s): {cp.restart.hidden_share * 100.0:.1f}%"
                    " of switch overhead hidden by delayed restart"
                ),
                data={
                    "hidden_s": _r(cp.restart.hidden_s),
                    "visible_s": _r(cp.restart.visible_s),
                },
            )
        )
    for rank in stragglers.affected_ranks:
        hits = [f for f in stragglers.findings if f.rank == rank]
        worst = max(hits, key=lambda f: f.slowdown)
        findings.append(
            Finding(
                kind="straggler",
                severity="warning",
                message=(
                    f"worker rank {rank} straggled in {len(hits)} epoch(s),"
                    f" up to {worst.slowdown:.2f}x the gang median"
                    f" ({worst.deviation_sigma:.1f}σ)"
                ),
                data={"rank": rank, "epochs": [f.epoch for f in hits]},
            )
        )
    if drift is not None and drift.points:
        if drift.drifting:
            msg = (
                f"analytical model drifts beyond δ={drift.threshold:g}:"
                f" aggregate residual time"
                f" {drift.aggregate_time_residual * 100.0:.2f}% /"
                f" cost {drift.aggregate_cost_residual * 100.0:.2f}%"
            )
            if drift.refit_compute_s_per_mb is not None:
                msg += (
                    f"; refit suggests compute_s_per_mb ="
                    f" {drift.refit_compute_s_per_mb:.6f}"
                )
            findings.append(
                Finding(
                    kind="model-drift",
                    severity="warning",
                    message=msg,
                    data={
                        "aggregate_time_residual": _r(drift.aggregate_time_residual),
                        "aggregate_cost_residual": _r(drift.aggregate_cost_residual),
                        "refit_compute_s_per_mb": _r(drift.refit_compute_s_per_mb),
                    },
                )
            )
        else:
            findings.append(
                Finding(
                    kind="model-drift",
                    severity="info",
                    message=(
                        f"analytical models track measurements: aggregate"
                        f" residual time"
                        f" {drift.aggregate_time_residual * 100.0:.2f}% /"
                        f" cost {drift.aggregate_cost_residual * 100.0:.2f}%"
                        " (within the Fig. 19/20 validation bands)"
                    ),
                    data={
                        "aggregate_time_residual": _r(drift.aggregate_time_residual),
                        "aggregate_cost_residual": _r(drift.aggregate_cost_residual),
                    },
                )
            )
        if drift.flagged:
            findings.append(
                Finding(
                    kind="model-drift",
                    severity="info",
                    message=(
                        f"{len(drift.flagged)}/{len(drift.points)} outlier"
                        f" epoch(s) beyond δ={drift.threshold:g}"
                        " (noise spikes, not systematic drift)"
                    ),
                    data={"epochs": [p.epoch for p in drift.flagged]},
                )
            )
    if regret is not None and regret.points:
        jct = obs.jct_s if obs.jct_s > 0 else 1e-12
        regret_share = max(0.0, regret.total_time_regret_s) / jct
        severity = "warning" if regret_share > 0.05 else "info"
        findings.append(
            Finding(
                kind="regret",
                severity=severity,
                message=(
                    f"{regret.decisions_optimal}/{regret.decisions_total}"
                    " allocation decisions were hindsight-optimal;"
                    f" time regret {regret.total_time_regret_s:+.3f} s"
                    f" ({regret_share * 100.0:.1f}% of JCT),"
                    f" cost regret {regret.total_cost_regret_usd:+.6f} USD"
                ),
                data={
                    "time_regret_s": _r(regret.total_time_regret_s),
                    "cost_regret_usd": _r(regret.total_cost_regret_usd),
                },
            )
        )
    order = {"warning": 0, "info": 1}
    findings.sort(key=lambda f: (order[f.severity], f.kind, f.message))
    return tuple(findings)


def _r(value: float | None, digits: int = 9) -> float | None:
    """Round for the JSON payload; 9 digits keeps sub-ns time resolution
    while making the document stable under benign float formatting."""
    return None if value is None else round(value, digits)
