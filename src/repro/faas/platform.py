"""The serverless platform simulator (AWS Lambda stand-in).

Executes *epochs* of BSP-synchronized function groups on the discrete-event
engine: every function acquires an account-concurrency slot, pays a cold
start unless its group is warm, loads its dataset partition, computes with
per-function jitter, and the group synchronizes after a barrier. Function
durations feed the billing meter.

Warm-pool semantics follow Lambda: a group of functions stays warm between
epochs under the same allocation; changing the allocation (the adaptive
scheduler's restart) cold-starts the new group unless it was pre-warmed by
the delayed-restart mechanism (paper Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import FaultError, RetryExhaustedError, SimulationError
from repro.common.types import EpochTimeBreakdown
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.faas.billing import BillingMeter
from repro.faas.events import Acquire, Join, Priority, Release, Resource, Simulator
from repro.faas.function import WarmPool
from repro.faas.noise import NoiseModel
from repro.telemetry import get_registry, get_tracer
from repro.timeseries import get_sampler


@dataclass(frozen=True, slots=True)
class EpochExecution:
    """Work description for one epoch of one function group.

    Attributes:
        group: warm-pool key — same group ⇒ warm starts after the first epoch.
        n_functions: number of parallel functions.
        memory_mb: per-function memory.
        load_s: base dataset-load duration per function.
        compute_s: base gradient-compute duration per function.
        sync_s: base parameter-synchronization duration for the whole group.
        prewarmed: True when delayed restart already started these functions.
        epoch_index: the executor's 1-based epoch counter; keys fault
            decisions when an injector is attached.
        storage: the allocation's storage backend name (Table-1 catalog
            value); selects the storage fault spec.
        incarnation: bumped by the executor when this epoch is re-run
            after a checkpoint restore, so the re-run draws fresh faults.
    """

    group: str
    n_functions: int
    memory_mb: int
    load_s: float
    compute_s: float
    sync_s: float
    prewarmed: bool = False
    epoch_index: int = 0
    storage: str = ""
    incarnation: int = 0


@dataclass(slots=True)
class InvocationResult:
    """Measured outcome of one executed epoch."""

    wall_time_s: float
    time: EpochTimeBreakdown
    cold_starts: int
    queue_wait_s: float
    billed_usd: float
    # Per-worker body durations (cold start + load + jittered compute) in
    # rank order; the barrier makes max(worker_durations_s) the gang's
    # effective load+compute window. Feeds the straggler diagnostics.
    worker_durations_s: tuple[float, ...] = ()
    cold_start_s: float = 0.0
    # Fault accounting (0 unless a fault injector is attached): how many
    # faults struck this epoch, and the wall-time inflation they caused
    # (failed attempts + backoffs + storage penalties).
    n_faults: int = 0
    fault_overhead_s: float = 0.0


@dataclass
class FaaSPlatform:
    """A simulated serverless account with a concurrency limit and billing."""

    platform: PlatformConfig = field(default_factory=lambda: DEFAULT_PLATFORM)
    seed: int = 0

    warm_ttl_s: float = 900.0
    # Fault seeding: rank -> multiplicative compute slowdown, applied on top
    # of the noise model. Empty by default, so normal runs are untouched; a
    # test (or a chaos experiment) injects {2: 5.0} to make worker 2 a 5x
    # straggler that the diagnostics layer must flag.
    straggler_factors: dict[int, float] = field(default_factory=dict)
    # A repro.faults.FaultInjector, or None. None (the default) takes the
    # exact pre-fault execution path: zero extra randomness, zero extra
    # metrics, byte-identical results.
    fault_injector: object | None = None

    def __post_init__(self) -> None:
        self.sim = Simulator()
        self.concurrency = Resource(
            self.platform.limits.max_concurrency, name="account-concurrency"
        )
        self.meter = BillingMeter(platform=self.platform)
        self._noise = NoiseModel(self.seed, "platform", self.platform)
        self.pool = WarmPool(ttl_s=self.warm_ttl_s)
        registry = get_registry()
        self.tracer = get_tracer()
        self._m_invocations = registry.counter(
            "repro_faas_invocations_total", "Function invocations executed"
        )
        self._m_cold_starts = registry.counter(
            "repro_faas_cold_starts_total", "Function cold starts paid"
        )
        self._m_cold_seconds = registry.counter(
            "repro_faas_cold_start_seconds_total",
            "Critical-path cold-start time (cold functions of one epoch "
            "start in parallel, so each cold epoch pays one window)",
        )
        self._m_queue_wait = registry.histogram(
            "repro_faas_queue_wait_seconds",
            "Gang wait for account-concurrency slots, per epoch",
        )
        self._m_epoch_wall = registry.histogram(
            "repro_faas_epoch_wall_seconds", "Wall time of executed epochs"
        )
        self._m_occupancy = registry.gauge(
            "repro_faas_concurrency_in_use",
            "Concurrency slots held by the most recent epoch's gang",
        )
        self._m_occupancy_peak = registry.gauge(
            "repro_faas_concurrency_peak_in_use",
            "Highest simultaneous concurrency-slot usage seen so far",
        )

    # ------------------------------------------------------------------ warm pool
    def is_warm(self, group: str) -> bool:
        """True when the group has at least one warm instance."""
        return self.pool.warm_count(group, self.sim.now) > 0

    def prewarm(self, group: str, n: int = 1) -> None:
        """Provision ``n`` instances ahead of time (delayed restart, Fig. 8)."""
        self.pool.prewarm(group, n, self.sim.now)

    def retire(self, group: str) -> None:
        """Terminate a group's instances (allocation switch)."""
        self.pool.retire(group)

    def _sample_epoch(self, spec: EpochExecution, start: float, n_cold: int) -> None:
        """Epoch-boundary platform series on this account's sim clock."""
        ts = get_sampler()
        if not ts.enabled:
            return
        sim = self.sim
        ts.sample(
            "platform.concurrency_limit", start,
            float(self.platform.limits.max_concurrency),
        )
        ts.sample("platform.inflight", start, float(spec.n_functions))
        ts.sample(
            "platform.warm_pool", sim.now, float(self.pool.total_warm(sim.now))
        )
        ts.sample(
            "platform.cold_start_rate", sim.now, n_cold / spec.n_functions
        )

    # ------------------------------------------------------------------ execution
    @property
    def noise_draws(self) -> int:
        """RNG cursor of the platform noise stream (journaled per epoch)."""
        return self._noise.draws

    def execute_epoch(self, spec: EpochExecution) -> InvocationResult:
        """Run one epoch on the event kernel and bill it.

        One loop serves both the fault-free and the injector-attached
        path. Without an injector each worker sleeps through its cold
        start, load, and jittered compute and the gang synchronizes after
        the barrier — the barrier makes the epoch's compute phase the
        *maximum* of the per-function durations, one source of the
        analytical model's validation error (Fig. 19/20). With an
        injector attached the same gang additionally sees permanent-loss
        detection (a :attr:`Priority.FAULT` kernel event before the gang
        launches), per-worker bounded retry (crashes, timeouts,
        cold-start failures — each failed attempt is billed and re-run
        after a jittered backoff), and storage transient/throttle
        penalties on the synchronization. A gang that exhausts its retry
        budget raises :class:`RetryExhaustedError`; the executor restores
        the last epoch-boundary checkpoint and re-runs only this epoch.

        The injector-free path draws the same noise in the same order and
        schedules the same events as it did before faults existed, so
        fault-free runs stay byte-identical.
        """
        if spec.n_functions < 1:
            raise SimulationError("epoch needs at least one function")
        sim = self.sim
        injector = self.fault_injector
        start = sim.now
        epoch = spec.epoch_index
        incarnation = spec.incarnation
        cold_base = self.platform.limits.cold_start_s

        if injector is not None:
            losses = injector.pending_losses(epoch, spec.n_functions)
            if losses:
                # The platform notices the dead instances when their
                # invokes time out — one detection window on the critical
                # path, dispatched ahead of any execution event at its
                # timestamp.
                detect_s = injector.plan.invocation_timeout_s or cold_base
                sim.schedule(detect_s, lambda: None, priority=Priority.FAULT)
                sim.run()
                for loss in losses:
                    injector.record(
                        "permanent-loss", sim.now, epoch=epoch, rank=loss.rank,
                        lost_s=detect_s,
                        detail=f"instance gone since epoch {loss.epoch}",
                    )
                    injector.mark_loss_handled(loss)
                exc = FaultError(
                    f"permanent loss of {len(losses)} function instance(s) "
                    f"at epoch {epoch}",
                    scope=injector.scope, t_s=sim.now,
                )
                exc.losses = tuple(losses)
                raise exc

        if spec.prewarmed:
            # Delayed restart provisioned these instances during the
            # previous epoch; make sure the pool reflects that.
            deficit = spec.n_functions - self.pool.warm_count(spec.group, sim.now)
            if deficit > 0:
                self.pool.prewarm(spec.group, deficit, sim.now)
        n_warm, n_cold = self.pool.acquire(spec.group, spec.n_functions, sim.now)
        noise = self._noise
        cold_s = cold_base * noise.cold_start_factor() if n_cold else 0.0
        compute_factors = noise.compute_factors(spec.n_functions)
        for rank, factor in self.straggler_factors.items():
            if 0 <= rank < spec.n_functions:
                compute_factors[rank] *= factor
        load_factor = noise.network_factor()
        sync_factor = noise.network_factor()
        retry = injector.plan.retry if injector is not None else None
        timeout_s = (
            injector.plan.invocation_timeout_s if injector is not None else None
        )
        cold_sigma = self.platform.cold_start_noise_sigma

        waits: list[float] = []
        starts = [0.0] * spec.n_functions
        durations = [0.0] * spec.n_functions  # final successful attempt
        consumed = [0.0] * spec.n_functions   # body start -> final outcome
        failed = [False] * spec.n_functions
        extra_attempts: list[float] = []      # failed-attempt runtimes (billed)
        extra_cold = [0]                      # retry + failed cold windows
        cold_failures = [0]                   # failed cold windows only

        def worker_proc(rank: int):
            body_start = sim.now
            starts[rank] = body_start
            if injector is None:
                # Fault-free fast path: the historical event shape —
                # separate cold/load/compute sleeps — kept verbatim so
                # existing runs replay byte-identically.
                if rank >= n_warm:  # the cold subset pays the cold start
                    yield cold_s
                yield spec.load_s * load_factor
                yield spec.compute_s * float(compute_factors[rank])
                durations[rank] = sim.now - body_start
                consumed[rank] = durations[rank]
                return
            attempt = 0
            while attempt < retry.max_attempts:
                attempt_start = sim.now
                # Cold start: only the gang's cold subset pays one, on its
                # first attempt. Retries are routed to a warm spare of the
                # same group (the platform keeps the sandbox pool alive),
                # so they pay backoff + re-execution but no cold window.
                cold_here = 0.0
                if rank >= n_warm and attempt == 0:
                    n_csf = injector.cold_start_failures(
                        epoch, rank, attempt, incarnation
                    )
                    for k in range(n_csf):
                        window = cold_base * injector.cold_window_factor(
                            epoch, rank, attempt, k, cold_sigma, incarnation
                        )
                        yield window
                        extra_cold[0] += 1
                        cold_failures[0] += 1
                        injector.record(
                            "cold-start-failure", sim.now, epoch=epoch,
                            rank=rank, attempt=attempt, lost_s=window,
                        )
                    cold_here = cold_s
                if attempt == 0:
                    factor = float(compute_factors[rank])
                else:
                    # Speculative re-execution: fresh jitter, and the
                    # seeded straggler factor does not follow the retry.
                    factor = injector.retry_compute_factor(
                        epoch, rank, attempt, self.platform.compute_noise_sigma,
                        incarnation,
                    )
                body_s = spec.load_s * load_factor + spec.compute_s * factor
                planned = cold_here + body_s
                fault = injector.worker_fault(epoch, rank, attempt, incarnation)
                if fault is not None:
                    ran = cold_here + body_s * fault.run_fraction
                    yield ran
                    extra_attempts.append(ran)
                    injector.record(
                        "crash", sim.now, epoch=epoch, rank=rank,
                        attempt=attempt, lost_s=ran, detail=fault.kind,
                    )
                elif timeout_s is not None and planned > timeout_s:
                    yield timeout_s
                    extra_attempts.append(timeout_s)
                    injector.record(
                        "timeout", sim.now, epoch=epoch, rank=rank,
                        attempt=attempt, lost_s=timeout_s,
                        detail=f"planned {planned:.2f}s > {timeout_s:.2f}s limit",
                    )
                else:
                    yield planned
                    durations[rank] = sim.now - attempt_start
                    consumed[rank] = sim.now - body_start
                    return
                attempt += 1
                if attempt >= retry.max_attempts:
                    failed[rank] = True
                    consumed[rank] = sim.now - body_start
                    injector.record(
                        "retry-exhausted", sim.now, epoch=epoch, rank=rank,
                        attempt=attempt - 1,
                        detail=f"worker failed {attempt}x",
                    )
                    return
                backoff = injector.backoff_s(
                    attempt, epoch, rank, incarnation
                )
                injector.record(
                    "retry", sim.now, epoch=epoch, rank=rank,
                    attempt=attempt, lost_s=backoff,
                )
                if backoff > 0.0:
                    yield backoff

        outcome: dict[str, float] = {}

        def epoch_driver():
            # BSP needs every worker alive simultaneously, so the epoch
            # acquires its n concurrency slots as a gang; n above the
            # account limit is an infeasible allocation, not a queue.
            arrive = sim.now
            yield Acquire(self.concurrency, spec.n_functions)
            waits.append(sim.now - arrive)
            tasks = [sim.spawn(worker_proc(r)) for r in range(spec.n_functions)]
            yield Join.of(tasks)
            outcome["barrier_at"] = sim.now
            if injector is None:
                sync_s = spec.sync_s * sync_factor
                yield sync_s
                outcome["sync_s"] = sync_s
            elif not any(failed):
                sync_s = spec.sync_s * sync_factor
                penalty = injector.sync_penalty(
                    epoch, spec.storage, sim.now, sync_s, incarnation
                )
                if penalty.exhausted:
                    outcome["storage_failed"] = 1.0
                else:
                    yield sync_s + penalty.extra_s
                    outcome["sync_s"] = sync_s
                    outcome["sync_extra_s"] = penalty.extra_s
                    outcome["sync_faults"] = float(
                        penalty.n_transient + (1 if penalty.throttled_s else 0)
                    )
            yield Release(self.concurrency, spec.n_functions)

        driver = sim.spawn(epoch_driver())
        sim.run()
        if not driver.done:
            raise SimulationError("epoch driver did not complete; engine stall")

        sync_s = outcome.get("sync_s", 0.0)
        sync_extra = outcome.get("sync_extra_s", 0.0)
        billed = 0.0
        # Failed attempts are billed like any invocation (the platform
        # charges for crashed and timed-out runs); only survivors pay the
        # synchronization tail.
        for ran in extra_attempts:
            billed += self.meter.bill_invocation(spec.memory_mb, ran).total_usd
        gang_failed = any(failed) or "storage_failed" in outcome
        for rank, d in enumerate(durations):
            if failed[rank]:
                continue
            billed += self.meter.bill_invocation(
                spec.memory_mb, d + (0.0 if gang_failed else sync_s)
            ).total_usd
        self.pool.release(spec.group, spec.n_functions, sim.now)
        wall = sim.now - start
        queue_wait = max(waits) if waits else 0.0
        n_faults = (
            len(extra_attempts)
            + cold_failures[0]
            + int(outcome.get("sync_faults", 0.0))
            + (1 if "storage_failed" in outcome else 0)
        )

        self._m_invocations.inc(spec.n_functions + len(extra_attempts))
        if n_cold:
            self._m_cold_starts.inc(n_cold)
            self._m_cold_seconds.inc(cold_s)
        if extra_cold[0]:
            self._m_cold_starts.inc(extra_cold[0])
        self._m_queue_wait.observe(queue_wait)
        self._m_epoch_wall.observe(wall)
        self._m_occupancy.set(spec.n_functions)
        self._m_occupancy_peak.set(self.concurrency.peak_in_use)
        self._sample_epoch(spec, start, n_cold)

        if gang_failed:
            detail = (
                "storage sync retries exhausted"
                if "storage_failed" in outcome
                else f"{sum(failed)} worker(s) exhausted their retries"
            )
            raise RetryExhaustedError(
                f"epoch {epoch} failed: {detail}",
                scope=injector.scope, t_s=sim.now,
            )

        final_window = max(durations)
        gang_window = max(consumed)
        fault_overhead = max(0.0, gang_window - final_window) + sync_extra
        measured = EpochTimeBreakdown(
            load_s=spec.load_s * load_factor,
            compute_s=final_window - cold_s - spec.load_s * load_factor,
            sync_s=sync_s + sync_extra,
        )
        tracer = self.tracer
        if tracer.enabled:
            track = f"group:{spec.group}"
            body_start = start + queue_wait
            if queue_wait > 0:
                tracer.span(
                    "queue-wait", "queue", start, queue_wait, track,
                    gang=spec.n_functions,
                )
            if n_cold:
                tracer.span(
                    "cold-start", "cold", body_start, cold_s, track,
                    cold=n_cold, warm=n_warm,
                )
            if injector is None:
                load_end = body_start + cold_s + measured.load_s
                tracer.span(
                    "load", "load", body_start + cold_s, measured.load_s, track
                )
                tracer.span(
                    "compute", "compute", load_end,
                    max(0.0, outcome["barrier_at"] - load_end), track,
                    barrier=True,
                )
                tracer.span("sync", "sync", outcome["barrier_at"], sync_s, track)
            else:
                if fault_overhead > 0:
                    tracer.span(
                        "fault-recovery", "fault", outcome["barrier_at"],
                        fault_overhead, track, epoch=epoch,
                        n_faults=n_faults,
                    )
                tracer.span(
                    "sync", "sync", outcome["barrier_at"], sync_s + sync_extra,
                    track,
                )
            for rank in range(spec.n_functions):
                tracer.span(
                    f"worker-{rank}", "worker", starts[rank], consumed[rank],
                    track, rank=rank, cold=rank >= n_warm,
                )
        return InvocationResult(
            wall_time_s=wall,
            time=measured,
            cold_starts=n_cold,
            queue_wait_s=queue_wait,
            billed_usd=billed,
            worker_durations_s=tuple(consumed),
            cold_start_s=cold_s,
            n_faults=n_faults,
            fault_overhead_s=fault_overhead,
        )
