"""The serverless platform simulator (AWS Lambda stand-in).

Executes *epochs* of BSP-synchronized function groups on the discrete-event
engine: every function acquires an account-concurrency slot, pays a cold
start unless its group is warm, loads its dataset partition, computes with
per-function jitter, and the group synchronizes after a barrier. Function
durations feed the billing meter.

Warm-pool semantics follow Lambda: a group of functions stays warm between
epochs under the same allocation; changing the allocation (the adaptive
scheduler's restart) cold-starts the new group unless it was pre-warmed by
the delayed-restart mechanism (paper Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SimulationError
from repro.common.types import EpochTimeBreakdown
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.faas.billing import BillingMeter
from repro.faas.events import Acquire, Join, Release, Resource, Simulator
from repro.faas.function import WarmPool
from repro.faas.noise import NoiseModel
from repro.telemetry import get_registry, get_tracer


@dataclass(frozen=True, slots=True)
class EpochExecution:
    """Work description for one epoch of one function group.

    Attributes:
        group: warm-pool key — same group ⇒ warm starts after the first epoch.
        n_functions: number of parallel functions.
        memory_mb: per-function memory.
        load_s: base dataset-load duration per function.
        compute_s: base gradient-compute duration per function.
        sync_s: base parameter-synchronization duration for the whole group.
        prewarmed: True when delayed restart already started these functions.
    """

    group: str
    n_functions: int
    memory_mb: int
    load_s: float
    compute_s: float
    sync_s: float
    prewarmed: bool = False


@dataclass(slots=True)
class InvocationResult:
    """Measured outcome of one executed epoch."""

    wall_time_s: float
    time: EpochTimeBreakdown
    cold_starts: int
    queue_wait_s: float
    billed_usd: float
    # Per-worker body durations (cold start + load + jittered compute) in
    # rank order; the barrier makes max(worker_durations_s) the gang's
    # effective load+compute window. Feeds the straggler diagnostics.
    worker_durations_s: tuple[float, ...] = ()
    cold_start_s: float = 0.0


@dataclass
class FaaSPlatform:
    """A simulated serverless account with a concurrency limit and billing."""

    platform: PlatformConfig = field(default_factory=lambda: DEFAULT_PLATFORM)
    seed: int = 0

    warm_ttl_s: float = 900.0
    # Fault seeding: rank -> multiplicative compute slowdown, applied on top
    # of the noise model. Empty by default, so normal runs are untouched; a
    # test (or a chaos experiment) injects {2: 5.0} to make worker 2 a 5x
    # straggler that the diagnostics layer must flag.
    straggler_factors: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.sim = Simulator()
        self.concurrency = Resource(
            self.platform.limits.max_concurrency, name="account-concurrency"
        )
        self.meter = BillingMeter(platform=self.platform)
        self._noise = NoiseModel(self.seed, "platform", self.platform)
        self.pool = WarmPool(ttl_s=self.warm_ttl_s)
        registry = get_registry()
        self.tracer = get_tracer()
        self._m_invocations = registry.counter(
            "repro_faas_invocations_total", "Function invocations executed"
        )
        self._m_cold_starts = registry.counter(
            "repro_faas_cold_starts_total", "Function cold starts paid"
        )
        self._m_cold_seconds = registry.counter(
            "repro_faas_cold_start_seconds_total",
            "Critical-path cold-start time (cold functions of one epoch "
            "start in parallel, so each cold epoch pays one window)",
        )
        self._m_queue_wait = registry.histogram(
            "repro_faas_queue_wait_seconds",
            "Gang wait for account-concurrency slots, per epoch",
        )
        self._m_epoch_wall = registry.histogram(
            "repro_faas_epoch_wall_seconds", "Wall time of executed epochs"
        )
        self._m_occupancy = registry.gauge(
            "repro_faas_concurrency_in_use",
            "Concurrency slots held by the most recent epoch's gang",
        )
        self._m_occupancy_peak = registry.gauge(
            "repro_faas_concurrency_peak_in_use",
            "Highest simultaneous concurrency-slot usage seen so far",
        )

    # ------------------------------------------------------------------ warm pool
    def is_warm(self, group: str) -> bool:
        """True when the group has at least one warm instance."""
        return self.pool.warm_count(group, self.sim.now) > 0

    def prewarm(self, group: str, n: int = 1) -> None:
        """Provision ``n`` instances ahead of time (delayed restart, Fig. 8)."""
        self.pool.prewarm(group, n, self.sim.now)

    def retire(self, group: str) -> None:
        """Terminate a group's instances (allocation switch)."""
        self.pool.retire(group)

    # ------------------------------------------------------------------ execution
    def execute_epoch(self, spec: EpochExecution) -> InvocationResult:
        """Run one epoch on the event engine and bill it.

        Returns measured wall time and a load/compute/sync breakdown. The
        barrier makes the epoch's compute phase the *maximum* of the
        per-function jittered durations — one source of the analytical
        model's validation error (Fig. 19/20).
        """
        if spec.n_functions < 1:
            raise SimulationError("epoch needs at least one function")
        sim = self.sim
        start = sim.now
        if spec.prewarmed:
            # Delayed restart provisioned these instances during the
            # previous epoch; make sure the pool reflects that.
            deficit = spec.n_functions - self.pool.warm_count(spec.group, sim.now)
            if deficit > 0:
                self.pool.prewarm(spec.group, deficit, sim.now)
        n_warm, n_cold = self.pool.acquire(spec.group, spec.n_functions, sim.now)
        noise = self._noise
        cold_s = (
            self.platform.limits.cold_start_s * noise.cold_start_factor()
            if n_cold
            else 0.0
        )
        compute_factors = noise.compute_factors(spec.n_functions)
        for rank, factor in self.straggler_factors.items():
            if 0 <= rank < spec.n_functions:
                compute_factors[rank] *= factor
        load_factor = noise.network_factor()
        sync_factor = noise.network_factor()

        waits: list[float] = []
        starts = [0.0] * spec.n_functions
        durations = [0.0] * spec.n_functions

        def function_proc(rank: int):
            body_start = sim.now
            starts[rank] = body_start
            if rank >= n_warm:  # the cold subset pays the cold start
                yield cold_s
            yield spec.load_s * load_factor
            yield spec.compute_s * float(compute_factors[rank])
            durations[rank] = sim.now - body_start

        outcome: dict[str, float] = {}

        def epoch_driver():
            # BSP needs every worker alive simultaneously, so the epoch
            # acquires its n concurrency slots as a gang; n above the
            # account limit is an infeasible allocation, not a queue.
            arrive = sim.now
            yield Acquire(self.concurrency, spec.n_functions)
            waits.append(sim.now - arrive)
            tasks = [sim.spawn(function_proc(r)) for r in range(spec.n_functions)]
            yield Join.of(tasks)
            barrier_at = sim.now
            sync_s = spec.sync_s * sync_factor
            yield sync_s
            outcome["sync_s"] = sync_s
            outcome["barrier_at"] = barrier_at
            yield Release(self.concurrency, spec.n_functions)

        driver = sim.spawn(epoch_driver())
        sim.run()
        if not driver.done:
            raise SimulationError("epoch driver did not complete; engine stall")

        wall = sim.now - start
        sync_s = outcome["sync_s"]
        billed = 0.0
        for d in durations:
            bill = self.meter.bill_invocation(spec.memory_mb, d + sync_s)
            billed += bill.total_usd
        self.pool.release(spec.group, spec.n_functions, sim.now)
        measured = EpochTimeBreakdown(
            load_s=spec.load_s * load_factor,
            compute_s=float(max(durations)) - cold_s - spec.load_s * load_factor,
            sync_s=sync_s,
        )
        queue_wait = max(waits) if waits else 0.0
        self._m_invocations.inc(spec.n_functions)
        if n_cold:
            self._m_cold_starts.inc(n_cold)
            self._m_cold_seconds.inc(cold_s)
        self._m_queue_wait.observe(queue_wait)
        self._m_epoch_wall.observe(wall)
        self._m_occupancy.set(spec.n_functions)
        self._m_occupancy_peak.set(self.concurrency.peak_in_use)
        tracer = self.tracer
        if tracer.enabled:
            track = f"group:{spec.group}"
            body_start = start + queue_wait
            if queue_wait > 0:
                tracer.span(
                    "queue-wait", "queue", start, queue_wait, track,
                    gang=spec.n_functions,
                )
            if n_cold:
                tracer.span(
                    "cold-start", "cold", body_start, cold_s, track,
                    cold=n_cold, warm=n_warm,
                )
            load_end = body_start + cold_s + measured.load_s
            tracer.span(
                "load", "load", body_start + cold_s, measured.load_s, track
            )
            tracer.span(
                "compute", "compute", load_end,
                max(0.0, outcome["barrier_at"] - load_end), track,
                barrier=True,
            )
            tracer.span("sync", "sync", outcome["barrier_at"], sync_s, track)
            for rank in range(spec.n_functions):
                tracer.span(
                    f"worker-{rank}", "worker", starts[rank], durations[rank],
                    track, rank=rank, cold=rank >= n_warm,
                )
        return InvocationResult(
            wall_time_s=wall,
            time=measured,
            cold_starts=n_cold,
            queue_wait_s=queue_wait,
            billed_usd=billed,
            worker_durations_s=tuple(durations),
            cold_start_s=cold_s,
        )
