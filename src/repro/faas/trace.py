"""Execution tracing for the platform simulator.

Records what the simulated platform did — invocations, cold starts, phase
boundaries, restarts — and exports the timeline in Chrome's trace-event
JSON format (load it at ``chrome://tracing`` or in Perfetto) for debugging
scheduler behaviour visually.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.common.errors import ValidationError


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timeline span (seconds, simulated time)."""

    name: str
    category: str
    start_s: float
    duration_s: float
    track: str  # e.g. "group:10fn/1769MB/vmps" or "scheduler"
    args: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValidationError(f"duration must be >= 0, got {self.duration_s}")


class TraceRecorder:
    """Collects trace events and renders them."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self.instants: list[TraceEvent] = []

    def record(
        self,
        name: str,
        category: str,
        start_s: float,
        duration_s: float,
        track: str,
        **args,
    ) -> TraceEvent:
        event = TraceEvent(
            name=name, category=category, start_s=start_s,
            duration_s=duration_s, track=track, args=dict(args),
        )
        self.events.append(event)
        return event

    def instant(
        self, name: str, category: str, t_s: float, track: str, **args
    ) -> TraceEvent:
        """Record one zero-duration marker (Chrome 'i' instant event)."""
        event = TraceEvent(
            name=name, category=category, start_s=t_s,
            duration_s=0.0, track=track, args=dict(args),
        )
        self.instants.append(event)
        return event

    def spans(self, category: str | None = None) -> list[TraceEvent]:
        """Events, optionally filtered by category, in start order."""
        out = [
            e for e in self.events if category is None or e.category == category
        ]
        return sorted(out, key=lambda e: (e.start_s, e.track))

    def total_time(self, category: str) -> float:
        """Summed duration of one category's spans."""
        return sum(e.duration_s for e in self.spans(category))

    def to_chrome_trace(self) -> str:
        """Chrome trace-event JSON ('X' complete events, µs timestamps)."""
        tracks = {
            t: i + 1
            for i, t in enumerate(
                sorted({e.track for e in self.events} | {e.track for e in self.instants})
            )
        }
        payload = [
            {
                "name": e.name,
                "cat": e.category,
                "ph": "X",
                "ts": e.start_s * 1e6,
                "dur": e.duration_s * 1e6,
                "pid": 1,
                "tid": tracks[e.track],
                "args": e.args,
            }
            for e in self.spans()
        ]
        meta = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
            for track, tid in tracks.items()
        ]
        marks = [
            {
                "name": e.name,
                "cat": e.category,
                "ph": "i",
                "ts": e.start_s * 1e6,
                "s": "t",
                "pid": 1,
                "tid": tracks[e.track],
                "args": e.args,
            }
            for e in sorted(self.instants, key=lambda e: (e.start_s, e.track, e.name))
        ]
        return json.dumps({"traceEvents": meta + payload + marks})

    def summary(self) -> dict[str, float]:
        """Total duration per category."""
        out: dict[str, float] = {}
        for e in self.events:
            out[e.category] = out.get(e.category, 0.0) + e.duration_s
        return out


def trace_epochs(recorder: TraceRecorder, epochs: Iterable, start_at: float = 0.0) -> float:
    """Record a training run's EpochRecords onto a recorder.

    Returns the timeline's end time. Each epoch contributes load/compute/
    sync spans on its allocation's track, plus restart markers.
    """
    t = start_at
    for e in epochs:
        track = f"group:{e.allocation.describe()}"
        recorder.record("load", "load", t, e.time.load_s, track, epoch=e.index)
        recorder.record(
            "compute", "compute", t + e.time.load_s, e.time.compute_s, track,
            epoch=e.index, loss=e.loss,
        )
        recorder.record(
            "sync", "sync", t + e.time.load_s + e.time.compute_s,
            e.time.sync_s, track, epoch=e.index,
        )
        # Delayed restart launches the new functions *during* this epoch so
        # they are ready when it ends (Fig. 8): the hidden startup occupies
        # the epoch's trailing window, not time after it.
        hidden = getattr(e, "hidden_restart_overlap_s", 0.0)
        if hidden:
            overlap = min(hidden, e.time.total_s)
            recorder.record(
                "restart-overlap", "scheduling", t + e.time.total_s - overlap,
                overlap, "scheduler", epoch=e.index, hidden=True,
            )
        if e.scheduling_overhead_s:
            recorder.record(
                "restart", "scheduling", t + e.time.total_s,
                e.scheduling_overhead_s, "scheduler", epoch=e.index,
            )
        t += e.time.total_s + e.scheduling_overhead_s
    return t
