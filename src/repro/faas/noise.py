"""Stochastic perturbation of compute and network phases.

The simulator multiplies every phase duration by a lognormal factor
(median 1.0). Compute jitter is small (co-located CPU variation); network
jitter is larger and occasionally spikes — the paper attributes its largest
model-validation error to "network instability" at high function counts
(Fig. 19), which the spike term reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import stream_for
from repro.config import DEFAULT_PLATFORM, PlatformConfig


class NoiseModel:
    """Per-run noise streams, deterministic in (seed, label)."""

    def __init__(
        self,
        seed: int,
        label: object = "noise",
        platform: PlatformConfig = DEFAULT_PLATFORM,
        spike_prob: float = 0.02,
        spike_scale: float = 2.5,
    ) -> None:
        self._rng = stream_for(seed, "noise", label)
        self.compute_sigma = platform.compute_noise_sigma
        self.network_sigma = platform.network_noise_sigma
        self.cold_start_sigma = platform.cold_start_noise_sigma
        self.spike_prob = spike_prob
        self.spike_scale = spike_scale
        # RNG cursor: how many values this stream has produced. The run
        # journal records it at every epoch boundary, so a resumed replay
        # can verify it is drawing the same noise sequence.
        self.draws = 0

    def compute_factor(self) -> float:
        """Multiplicative jitter for a compute phase."""
        self.draws += 1
        return float(self._rng.lognormal(0.0, self.compute_sigma))

    def network_factor(self) -> float:
        """Multiplicative jitter for a network phase, with rare spikes."""
        base = float(self._rng.lognormal(0.0, self.network_sigma))
        self.draws += 2
        if self._rng.random() < self.spike_prob:
            base *= self.spike_scale
        return base

    def cold_start_factor(self) -> float:
        """Jitter for function cold starts (heavier-tailed)."""
        self.draws += 1
        return float(self._rng.lognormal(0.0, self.cold_start_sigma))

    def compute_factors(self, n: int) -> np.ndarray:
        """n independent compute factors (one per function)."""
        self.draws += n
        return np.exp(self._rng.normal(0.0, self.compute_sigma, size=n))
