"""Compatibility surface over the unified event kernel.

The generator-based discrete-event engine that used to live here is now
:mod:`repro.kernel.core` — one kernel shared by every simulated
subsystem instead of a platform-private loop. This module keeps the
historical import surface (``repro.faas.events.Simulator`` and the
effect types) so platform code and downstream users are unaffected;
``Simulator`` *is* the kernel.

Processes are Python generators that yield *effects*: a ``float``
(sleep), ``Acquire``/``Release`` on a ``Resource``, ``Join`` on spawned
tasks, or a sub-generator. Events at equal timestamps fire in
deterministic ``(time, priority, seq)`` order — see
:class:`repro.kernel.Priority`.
"""

from __future__ import annotations

from repro.kernel.core import (
    Acquire,
    EventKernel,
    Join,
    Priority,
    Process,
    Release,
    Resource,
    Task,
)

#: The platform's event loop: the unified kernel under its historical name.
Simulator = EventKernel

__all__ = [
    "Acquire",
    "EventKernel",
    "Join",
    "Priority",
    "Process",
    "Release",
    "Resource",
    "Simulator",
    "Task",
]
