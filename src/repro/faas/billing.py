"""CloudWatch-style metering of simulated executions.

The meter is the reproduction's ground truth for cost: the model-validation
experiment (Fig. 19/20) compares the analytical cost model against what this
layer bills for noisy simulated runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.units import gb_seconds
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.telemetry import get_registry


@dataclass(frozen=True, slots=True)
class InvocationBill:
    """Billing record of one function invocation."""

    memory_mb: int
    duration_s: float
    billed_duration_s: float
    compute_usd: float
    invocation_usd: float

    @property
    def total_usd(self) -> float:
        return self.compute_usd + self.invocation_usd


@dataclass
class BillingMeter:
    """Accumulates function and storage charges for one job."""

    platform: PlatformConfig = field(default_factory=lambda: DEFAULT_PLATFORM)
    bills: list[InvocationBill] = field(default_factory=list)
    storage_usd: float = 0.0

    def __post_init__(self) -> None:
        registry = get_registry()
        self._m_gb_seconds = registry.counter(
            "repro_faas_billed_gb_seconds_total",
            "GB-seconds billed across all invocations",
        )
        self._m_billed_usd = registry.counter(
            "repro_faas_billed_usd_total",
            "Money billed, by cost component",
            labelnames=("component",),
        )

    def bill_invocation(self, memory_mb: int, duration_s: float) -> InvocationBill:
        """Bill one invocation: duration rounded up to the billing
        granularity (minimum one unit, as Lambda bills), priced per
        GB-second, plus the request fee."""
        pricing = self.platform.pricing
        gran = pricing.billing_granularity_s
        billed = max(1, math.ceil(max(duration_s, 0.0) / gran)) * gran
        bill = InvocationBill(
            memory_mb=memory_mb,
            duration_s=duration_s,
            billed_duration_s=billed,
            compute_usd=gb_seconds(memory_mb, billed) * pricing.usd_per_gb_second,
            invocation_usd=pricing.usd_per_invocation,
        )
        self.bills.append(bill)
        self._m_gb_seconds.inc(gb_seconds(memory_mb, billed))
        self._m_billed_usd.labels(component="compute").inc(bill.compute_usd)
        self._m_billed_usd.labels(component="invocation").inc(bill.invocation_usd)
        return bill

    def bill_storage(self, usd: float) -> None:
        """Add an external-storage charge."""
        usd = max(0.0, usd)
        self.storage_usd += usd
        self._m_billed_usd.labels(component="storage").inc(usd)

    @property
    def invocation_count(self) -> int:
        return len(self.bills)

    @property
    def compute_usd(self) -> float:
        return sum(b.compute_usd for b in self.bills)

    @property
    def invocation_usd(self) -> float:
        return sum(b.invocation_usd for b in self.bills)

    @property
    def total_usd(self) -> float:
        return self.compute_usd + self.invocation_usd + self.storage_usd
