"""Function-instance lifecycle: the platform's warm pool.

Lambda keeps idle instances warm for a while after an invocation; a new
invocation reuses a warm instance (no cold start) when one exists, and
instances idle beyond the provider's TTL are reclaimed. This module tracks
instances per function group so the platform can charge cold starts only
for the instances that actually need them — including partial-warm epochs
after a scale-up (e.g. the adaptive scheduler growing n mid-job).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.telemetry import get_registry


@dataclass(slots=True)
class FunctionInstance:
    """One provisioned execution environment."""

    group: str
    created_at: float
    last_used_at: float
    invocations: int = 0


@dataclass
class WarmPool:
    """Per-group warm instances with idle-TTL reclamation.

    Attributes:
        ttl_s: idle time after which an instance is reclaimed (AWS keeps
            instances for minutes to hours; default 900 s).
    """

    ttl_s: float = 900.0
    _groups: dict[str, list[FunctionInstance]] = field(default_factory=dict)
    cold_starts: int = 0
    warm_reuses: int = 0
    expired: int = 0

    def __post_init__(self) -> None:
        if self.ttl_s <= 0:
            raise ValidationError(f"ttl_s must be positive, got {self.ttl_s}")
        registry = get_registry()
        self._m_hits = registry.counter(
            "repro_faas_warm_pool_hits_total",
            "Invocations served by a warm instance",
        )
        self._m_misses = registry.counter(
            "repro_faas_warm_pool_misses_total",
            "Invocations that needed a cold start",
        )
        self._m_evictions = registry.counter(
            "repro_faas_warm_pool_evictions_total",
            "Warm instances reclaimed after idling past the TTL",
        )
        self._m_prewarmed = registry.counter(
            "repro_faas_warm_pool_prewarmed_total",
            "Instances provisioned ahead of need (delayed restart)",
        )

    def _expire(self, now: float) -> None:
        for group, instances in list(self._groups.items()):
            kept = [i for i in instances if now - i.last_used_at <= self.ttl_s]
            if len(kept) < len(instances):
                self._m_evictions.inc(len(instances) - len(kept))
            self.expired += len(instances) - len(kept)
            if kept:
                self._groups[group] = kept
            else:
                del self._groups[group]

    def warm_count(self, group: str, now: float) -> int:
        """Currently-warm instances for a group."""
        self._expire(now)
        return len(self._groups.get(group, []))

    def acquire(self, group: str, n: int, now: float) -> tuple[int, int]:
        """Take ``n`` instances for an invocation wave.

        Returns ``(warm, cold)``: how many reused a warm instance and how
        many needed a cold start. Acquired instances leave the pool until
        :meth:`release`.
        """
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        self._expire(now)
        available = self._groups.get(group, [])
        warm = min(n, len(available))
        cold = n - warm
        # Reuse the most recently used instances (LIFO keeps the pool hot).
        available.sort(key=lambda i: i.last_used_at)
        self._groups[group] = available[: len(available) - warm]
        if not self._groups[group]:
            del self._groups[group]
        self.cold_starts += cold
        self.warm_reuses += warm
        if warm:
            self._m_hits.inc(warm)
        if cold:
            self._m_misses.inc(cold)
        return warm, cold

    def release(self, group: str, n: int, now: float) -> None:
        """Return ``n`` instances to the pool after an invocation wave."""
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        bucket = self._groups.setdefault(group, [])
        for _ in range(n):
            bucket.append(
                FunctionInstance(group=group, created_at=now, last_used_at=now)
            )

    def prewarm(self, group: str, n: int, now: float) -> None:
        """Provision ``n`` instances ahead of time (delayed restart)."""
        self._m_prewarmed.inc(n)
        self.release(group, n, now)

    def retire(self, group: str) -> int:
        """Terminate a group's instances; returns how many were dropped."""
        return len(self._groups.pop(group, []))

    def total_warm(self, now: float) -> int:
        self._expire(now)
        return sum(len(v) for v in self._groups.values())
