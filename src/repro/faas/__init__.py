"""Serverless platform substrate: discrete-event simulator of AWS Lambda."""

from repro.faas.billing import BillingMeter, InvocationBill
from repro.faas.events import Resource, Simulator
from repro.faas.function import FunctionInstance, WarmPool
from repro.faas.noise import NoiseModel
from repro.faas.platform import EpochExecution, FaaSPlatform, InvocationResult
from repro.faas.trace import TraceEvent, TraceRecorder, trace_epochs

__all__ = [
    "BillingMeter",
    "EpochExecution",
    "FaaSPlatform",
    "FunctionInstance",
    "InvocationBill",
    "InvocationResult",
    "NoiseModel",
    "Resource",
    "Simulator",
    "TraceEvent",
    "TraceRecorder",
    "WarmPool",
    "trace_epochs",
]
