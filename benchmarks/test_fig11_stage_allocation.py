"""Bench: Fig. 11 — per-trial budget per SHA stage (LR-Higgs)."""


def test_fig11(run_and_record):
    result = run_and_record("fig11")
    per_trial = result.series["per_trial"]
    ce = per_trial["ce-scaling"]
    static = per_trial["lambdaml"]
    # CE shifts per-trial budget toward the late stages.
    assert ce[-1] / static[-1] >= ce[0] / static[0]
    # Static methods concentrate spend in the first stages (paper: >80%).
    assert result.series["lambdaml_first2_share"] > 0.6
