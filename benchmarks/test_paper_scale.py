"""Bench: the paper's headline tuning scale (16384 trials, 14 stages).

Runs Algorithm 1 and the tuning executor at full SHA size to confirm the
reproduction handles the paper's configuration, the concurrency limit
forces early-stage waves (163840 function demands against 3000 slots), and
the planner stays fast thanks to Pareto pruning + the stage-contribution
cache.
"""

from repro.tuning.greedy_planner import GreedyHeuristicPlanner
from repro.tuning.plan import Objective, PartitionPlan, evaluate_plan, stage_waves
from repro.tuning.executor import TuningExecutor
from repro.tuning.sha import SHASpec
from repro.ml.models import workload
from repro.workflow.runner import profile_workload


def test_paper_headline_tuning(benchmark):
    w = workload("lr-higgs")
    profile = profile_workload(w)
    spec = SHASpec.paper_headline()
    cheap = evaluate_plan(
        PartitionPlan.uniform(profile.cheapest(), spec.n_stages), spec
    )
    budget = cheap.cost_usd * 1.3

    def plan_and_execute():
        res = GreedyHeuristicPlanner().plan(
            profile.pareto, spec, Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget,
        )
        run = TuningExecutor(w, spec, seed=0).run(res.plan)
        return res, run

    res, run = benchmark.pedantic(plan_and_execute, rounds=1, iterations=1)
    # The planner beats its static warm start and respects the budget.
    assert res.evaluation.jct_s < res.static_evaluation.jct_s
    assert res.evaluation.cost_usd <= budget * (1 + 1e-9)
    # Early stages queue in waves against the 3000-slot account limit.
    first_stage_n = res.plan.stages[0].allocation.n_functions
    assert stage_waves(spec.trials_in_stage(0), first_stage_n) > 1
    # The executed run finds a winner over all 16384 trials.
    assert run.winner is not None
    assert run.jct_s > 0
