"""Bench: Fig. 10 — tuning cost given a QoS constraint."""


def test_fig10(run_and_record):
    result = run_and_record("fig10")
    for name, comp in result.series.items():
        assert comp["ce-scaling"]["cost_usd"] <= comp["lambdaml"]["cost_usd"] * 1.02
        assert comp["ce-scaling"]["cost_usd"] < comp["siren"]["cost_usd"]
