"""Bench: Fig. 3 — reallocating early-stage resources (motivation)."""


def test_fig03(run_and_record):
    result = run_and_record("fig03")
    jct = result.series["jct"]
    # Paper: ~-39% JCT for moderate reallocation, +36% for aggressive.
    assert jct["realloc-10%"] < jct["static"]
    assert jct["realloc-30%"] > jct["static"]
    assert result.series["static_cost_share_first3"] > 0.8
