"""Bench: Table II — storage services under Cirrus, normalized to S3."""

import math


def test_table2(run_and_record):
    result = run_and_record("table2")
    s = result.series
    # DynamoDB N/A for MobileNet (400 KB item cap), viable+winning for LR.
    assert math.isnan(s[("mobilenet-cifar10", 10)]["dynamodb"][0])
    lr10 = s[("lr-higgs", 10)]
    assert lr10["dynamodb"][0] < 1.0 and lr10["dynamodb"][1] < 1.0
    # Expensive low-latency storage is not always cheapest (Finding 3).
    assert lr10["elasticache"][1] > 1.0
    # At 50 functions, VM-PS wins both dimensions for LR (paper: 0.84/0.78).
    lr50 = s[("lr-higgs", 50)]
    assert lr50["vmps"][0] < 1.0 and lr50["vmps"][1] < 1.0
