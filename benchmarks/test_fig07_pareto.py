"""Bench: Fig. 7 — Pareto boundary of the cost-JCT space."""


def test_fig07(run_and_record):
    result = run_and_record("fig07")
    s = result.series
    assert s["n_points"] == 50
    assert 2 <= s["n_front"] < 50
    assert s["n_dominated"] == s["n_points"] - s["n_front"]
