"""Bench: Fig. 21 — scheduling overhead and the δ threshold."""


def test_fig21(run_and_record):
    result = run_and_record("fig21")
    tuning = result.series["tuning"]
    # Pareto pruning shrinks the planner's candidate set and its overhead
    # (paper: ~69% less tuning scheduling overhead).
    assert tuning["ce-scaling"]["candidates"] < tuning["wo-pa"]["candidates"]
    assert tuning["ce-scaling"]["sim_overhead_s"] < tuning["wo-pa"]["sim_overhead_s"]
    training = result.series["training"]
    # Pareto (~64%) and delayed restart (~55%) both cut training overhead.
    assert (
        training["ce-scaling"]["sched_overhead_s"]
        <= training["wo-pa"]["sched_overhead_s"]
    )
    assert (
        training["wo-pa"]["sched_overhead_s"]
        <= training["wo-pa-dr"]["sched_overhead_s"]
    )
    # δ: reacting to every wiggle restarts more than reacting slowly.
    delta = result.series["delta"]
    deltas = sorted(delta)
    assert delta[deltas[0]]["restarts"] >= delta[deltas[-1]]["restarts"]
