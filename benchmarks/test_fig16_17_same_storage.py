"""Bench: Fig. 16/17 — all methods pinned to the same external storage."""


def test_fig16_17(run_and_record):
    result = run_and_record("fig16_17")
    for storage, comp in result.series["tuning"].items():
        assert comp["ce-scaling"]["jct_s"] <= comp["lambdaml"]["jct_s"] * 1.05
    training = result.series["training"]
    assert set(training) == {"s3", "vmps"}
    for storage, comp in training.items():
        methods = set(comp)
        assert "ce-scaling" in methods and len(methods) == 2
