"""Bench: Fig. 14/15 — CE-scaling under varying constraint tightness."""


def test_fig14_15(run_and_record):
    result = run_and_record("fig14_15")
    tuning = result.series["tuning"]
    mults = sorted(tuning)
    # CE never (meaningfully) worse than static at any tightness...
    for mult in mults:
        comp = tuning[mult]
        assert comp["ce-scaling"]["jct_s"] <= comp["lambdaml"]["jct_s"] * 1.02 + 10.0
    # ...and the advantage is largest under the tightest budget.
    tight_adv = 1 - tuning[mults[0]]["ce-scaling"]["jct_s"] / tuning[mults[0]][
        "lambdaml"
    ]["jct_s"]
    loose_adv = 1 - tuning[mults[-1]]["ce-scaling"]["jct_s"] / tuning[mults[-1]][
        "lambdaml"
    ]["jct_s"]
    assert tight_adv >= loose_adv - 0.05
