"""Bench: Fig. 9 — tuning JCT given a budget (CE vs static vs fixed)."""


def test_fig09(run_and_record):
    result = run_and_record("fig09")
    for name, comp in result.series.items():
        # CE-scaling never worse than the static methods; Fixed is worst.
        assert comp["ce-scaling"]["jct_s"] <= comp["lambdaml"]["jct_s"] * 1.02
        assert comp["ce-scaling"]["jct_s"] < comp["siren"]["jct_s"]
        assert comp["fixed"]["jct_s"] > comp["ce-scaling"]["jct_s"]
