#!/usr/bin/env python
"""Performance-regression harness over the experiment registry.

Runs every registered experiment (or a chosen subset) at a fixed scale and
seed, recording per-experiment wall-clock time plus the key telemetry
counters into a versioned JSON document (schema ``repro-bench/v1``,
default ``benchmarks/results/bench.json``). When a committed baseline
exists, the harness compares against it *before* overwriting and exits
non-zero if any experiment slowed down beyond the threshold::

    PYTHONPATH=src python benchmarks/regression.py                 # compare + record
    PYTHONPATH=src python benchmarks/regression.py --update-baseline
    PYTHONPATH=src python benchmarks/regression.py --experiments fig03,table2
    PYTHONPATH=src python benchmarks/regression.py --warn-only     # CI smoke mode

Wall-clock comparisons use a threshold ratio (default 1.5x) and skip
experiments whose baseline ran faster than ``MIN_COMPARABLE_WALL_S`` —
sub-50 ms timings are scheduler noise, not signal. Telemetry counters are
deterministic for a (scale, seed) pair, so a counter mismatch means the
simulation itself changed; that is reported as a drift note (and should
come with a baseline update in the same change), but only *timing*
regressions fail the run.

Each entry also records counter *rates* (counter / wall second, e.g.
planner candidates evaluated per second) — informational only, never
gated. Three overhead probes re-run ``fig12`` with (a) a live SLO guard,
(b) the hot-path profiler installed, and (c) the simulated-time series
sampler installed, each interleaved against a fresh probe-off measurement
and gated at 1.05x; the profiler entry additionally records the per-phase
wall-time breakdown under a ``profile`` key, and the sampler entry records
the capture's series/point counts under a ``timeseries`` key. A fourth
probe times the whole-repo interprocedural flow analysis (``flow-lint``)
against an absolute wall-clock budget, since that pass gates CI on every
change.

``--inject-slowdown FACTOR`` multiplies the measured wall times before
comparison — a synthetic regression used by the harness's own tests and
for verifying a CI wiring end to end.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.registry import REGISTRY, run_experiment  # noqa: E402
from repro.telemetry import get_registry, set_registry  # noqa: E402
from repro.telemetry.metrics import MetricsRegistry  # noqa: E402

JSON_SCHEMA = "repro-bench/v1"
DEFAULT_RESULTS = REPO_ROOT / "benchmarks" / "results" / "bench.json"

#: Counters whose totals are recorded per experiment. Deterministic for a
#: fixed (scale, seed), so they double as a cheap behavioral fingerprint.
TRACKED_COUNTERS = (
    "repro_faas_invocations_total",
    "repro_faas_cold_starts_total",
    "repro_scheduler_reallocations_total",
    "repro_scheduler_searches_total",
    "repro_planner_candidates_evaluated_total",
    "repro_profiler_points_evaluated_total",
)

#: Baselines faster than this are pure timer noise; their wall-clock is
#: recorded but never compared.
MIN_COMPARABLE_WALL_S = 0.05

#: SLO-guard overhead probe: re-run this experiment with a live event bus
#: and guard attached and assert the hook layer stays under the ratio.
GUARD_BASE_EXPERIMENT = "fig12"
GUARD_ENTRY = "fig12+slo-guard"
GUARD_OVERHEAD_RATIO = 1.05

#: Profiler overhead probe: the same experiment with the hot-path profiler
#: installed; its phase hooks must stay under the same ratio.
PROFILE_ENTRY = "fig12+profiler"
PROFILE_OVERHEAD_RATIO = 1.05

#: Time-series sampler overhead probe: the same experiment with the
#: simulated-time sampler recording; its epoch/event hooks must stay under
#: the same ratio.
TS_ENTRY = "fig12+timeseries"
TS_OVERHEAD_RATIO = 1.05

#: Run-bundle probe: the same experiment with every --save-run collector
#: forced on (registry, tracer, event log, sampler) plus bundle
#: serialization and a content-addressed store write at exit; the whole
#: ride-along must stay under the same ratio.
SAVE_RUN_ENTRY = "fig12+save-run"
SAVE_RUN_OVERHEAD_RATIO = 1.05

#: Event-kernel probe: the Fig-12 workloads re-trained with the run
#: journal recording (and fsyncing) every epoch boundary, interleaved
#: against journal-off twins of the same runs. Prices the whole
#: crash-consistency ride-along on the unified kernel's epoch loop.
KERNEL_ENTRY = "fig12+kernel"
KERNEL_OVERHEAD_RATIO = 1.05

#: Chaos matrix (--chaos): every Fig-12 workload must complete under the
#: default fault profile — recovering via retries, checkpoint restores and
#: Pareto replanning — with JCT inflated at most this much over fault-free.
CHAOS_INFLATION_LIMIT = 2.0
CHAOS_BUDGET_MULTIPLE = 2.5

#: Flow-analysis wall-time probe: the whole-repo interprocedural pass
#: (symbol table, call graph, and all REP009–REP013 dataflow rules over
#: ``src/repro``) must stay under this absolute budget. The pass gates CI
#: and is meant to run on every change, so it has to remain cheap as the
#: tree grows; the budget is deliberately loose against machine speed
#: (the pass takes ~1 s on a dev box) while still catching an accidental
#: fixpoint blowup or quadratic resolution step.
FLOW_ENTRY = "flow-lint"
FLOW_BUDGET_WALL_S = 10.0


def _rates(counters: dict, wall_s: float) -> dict:
    """Counter throughput per wall second (e.g. planner candidates/sec).

    Wall time is machine-dependent, so rates are informational — the
    compare step never gates on them — but they make "the planner got
    slower per candidate" visible at a glance across bench records.
    """
    if wall_s <= 0:
        return {}
    return {
        f"{name}_per_s": round(value / wall_s, 1)
        for name, value in sorted(counters.items())
    }


def measure(experiment: str, scale: str, seed: int, rounds: int) -> dict:
    """Best-of-``rounds`` wall time + telemetry counter totals."""
    walls: list[float] = []
    counters: dict[str, float] = {}
    for _ in range(rounds):
        registry = MetricsRegistry()
        prev = get_registry()
        set_registry(registry)
        start = time.perf_counter()
        try:
            run_experiment(experiment, scale=scale, seed=seed)
        finally:
            set_registry(prev)
        walls.append(time.perf_counter() - start)
        counters = {
            snap.name: sum(s.value for s in snap.samples)
            for snap in registry.snapshot()
            if snap.name in TRACKED_COUNTERS
        }
    wall = round(min(walls), 4)
    return {"wall_s": wall, "counters": counters, "rates": _rates(counters, wall)}


def measure_guarded(experiment: str, scale: str, seed: int, rounds: int) -> dict:
    """Like :func:`measure`, with a live event bus + SLO guard attached.

    The spec's limits are set far beyond any run so no alert ever fires:
    the measurement isolates the pure hook-bus + accounting overhead.
    """
    from repro.slo import EventBus, SLOGuard, SLOSpec
    from repro.slo.events import get_event_bus, set_event_bus

    walls: list[float] = []
    counters: dict[str, float] = {}
    for _ in range(rounds):
        spec = SLOSpec(name="overhead-probe", deadline_s=1e15, budget_usd=1e15)
        bus = EventBus()
        bus.subscribe(SLOGuard(spec).on_event)
        registry = MetricsRegistry()
        prev_registry = get_registry()
        prev_bus = get_event_bus()
        set_registry(registry)
        set_event_bus(bus)
        start = time.perf_counter()
        try:
            run_experiment(experiment, scale=scale, seed=seed)
        finally:
            set_registry(prev_registry)
            set_event_bus(prev_bus)
        walls.append(time.perf_counter() - start)
        counters = {
            snap.name: sum(s.value for s in snap.samples)
            for snap in registry.snapshot()
            if snap.name in TRACKED_COUNTERS
        }
    wall = round(min(walls), 4)
    return {"wall_s": wall, "counters": counters, "rates": _rates(counters, wall)}


def _phase_breakdown(profiler) -> dict:
    """Top-level profiling frames (depth <= 2) for a bench entry."""
    from repro.profiling import capture_payload

    payload = capture_payload(profiler)
    return {
        frame["path"]: {
            "n_calls": frame["n_calls"],
            "total_s": round(frame["total_s"], 4),
            "self_s": round(frame["self_s"], 4),
        }
        for frame in payload["frames"]
        if frame["depth"] <= 2
    }


def measure_profiled(experiment: str, scale: str, seed: int, rounds: int) -> dict:
    """Like :func:`measure`, with the hot-path profiler installed.

    The returned entry carries a ``profile`` key: per-phase wall-time
    breakdowns (planner phases, scheduler re-plans, epoch execution) from
    the run's ``repro-profile/v1`` aggregates.
    """
    from repro.profiling import Profiler, get_profiler, set_profiler

    walls: list[float] = []
    counters: dict[str, float] = {}
    breakdown: dict = {}
    for _ in range(rounds):
        profiler = Profiler()
        registry = MetricsRegistry()
        prev_registry = get_registry()
        prev_profiler = get_profiler()
        set_registry(registry)
        set_profiler(profiler)
        start = time.perf_counter()
        try:
            run_experiment(experiment, scale=scale, seed=seed)
        finally:
            set_registry(prev_registry)
            set_profiler(prev_profiler)
            profiler.close()
        walls.append(time.perf_counter() - start)
        counters = {
            snap.name: sum(s.value for s in snap.samples)
            for snap in registry.snapshot()
            if snap.name in TRACKED_COUNTERS
        }
        breakdown = _phase_breakdown(profiler)
    wall = round(min(walls), 4)
    return {
        "wall_s": wall,
        "counters": counters,
        "rates": _rates(counters, wall),
        "profile": breakdown,
    }


def measure_profile_overhead(
    experiment: str, scale: str, seed: int, rounds: int
) -> tuple[dict, dict]:
    """(profiler-off, profiler-on) entries from interleaved best-of pairs.

    Same discipline as :func:`measure_guard_overhead`: alternate the two
    variants so load drift cancels, then compare each side's best.
    """
    pairs = max(3, rounds)
    base = measure(experiment, scale, seed, 1)
    profiled = measure_profiled(experiment, scale, seed, 1)
    for _ in range(pairs - 1):
        base_again = measure(experiment, scale, seed, 1)
        profiled_again = measure_profiled(experiment, scale, seed, 1)
        if base_again["wall_s"] < base["wall_s"]:
            base = base_again
        if profiled_again["wall_s"] < profiled["wall_s"]:
            profiled = profiled_again
    return base, profiled


def measure_sampled(experiment: str, scale: str, seed: int, rounds: int) -> dict:
    """Like :func:`measure`, with the simulated-time sampler installed.

    The returned entry carries a ``timeseries`` key: how many series,
    stored points and markers the capture held — a cheap fingerprint of
    what the sampler actually recorded during the bench run.
    """
    from repro.timeseries import TimeSeriesSampler, get_sampler, set_sampler

    walls: list[float] = []
    counters: dict[str, float] = {}
    recorded: dict = {}
    for _ in range(rounds):
        sampler = TimeSeriesSampler()
        registry = MetricsRegistry()
        prev_registry = get_registry()
        prev_sampler = get_sampler()
        set_registry(registry)
        set_sampler(sampler)
        start = time.perf_counter()
        try:
            run_experiment(experiment, scale=scale, seed=seed)
        finally:
            set_registry(prev_registry)
            set_sampler(prev_sampler)
        walls.append(time.perf_counter() - start)
        counters = {
            snap.name: sum(s.value for s in snap.samples)
            for snap in registry.snapshot()
            if snap.name in TRACKED_COUNTERS
        }
        recorded = {
            "n_series": len(sampler.series),
            "n_points": sampler.n_points(),
            "n_markers": len(sampler.markers),
        }
    wall = round(min(walls), 4)
    return {
        "wall_s": wall,
        "counters": counters,
        "rates": _rates(counters, wall),
        "timeseries": recorded,
    }


def measure_sampler_overhead(
    experiment: str, scale: str, seed: int, rounds: int
) -> tuple[dict, dict]:
    """(sampler-off, sampler-on) entries from interleaved best-of pairs.

    Same discipline as :func:`measure_guard_overhead`: alternate the two
    variants so load drift cancels, then compare each side's best.
    """
    pairs = max(3, rounds)
    base = measure(experiment, scale, seed, 1)
    sampled = measure_sampled(experiment, scale, seed, 1)
    for _ in range(pairs - 1):
        base_again = measure(experiment, scale, seed, 1)
        sampled_again = measure_sampled(experiment, scale, seed, 1)
        if base_again["wall_s"] < base["wall_s"]:
            base = base_again
        if sampled_again["wall_s"] < sampled["wall_s"]:
            sampled = sampled_again
    return base, sampled


def measure_saved(experiment: str, scale: str, seed: int, rounds: int) -> dict:
    """Like :func:`measure`, with the full --save-run ride-along attached.

    Forces on every collector ``--save-run`` forces on (metrics registry,
    tracer, SLO event log, time-series sampler), then — still inside the
    timed region — serializes the bundle and saves it into a throwaway
    content-addressed store, so the entry prices the whole ride-along:
    collection, serialization, hashing and store writes. The returned
    entry carries a ``bundle`` key with the artifact count and total
    stored bytes as a fingerprint of what the saver captured.
    """
    import shutil
    import tempfile

    from repro.runs import ProvenanceStamp, RunStore, save_run
    from repro.slo import SLOSession
    from repro.telemetry.session import TelemetrySession
    from repro.timeseries import TimeSeriesSession

    walls: list[float] = []
    counters: dict[str, float] = {}
    recorded: dict = {}
    for _ in range(rounds):
        stamp = ProvenanceStamp.collect("bench", workload=experiment, seed=seed)
        tmp = tempfile.mkdtemp(prefix="repro-bench-runs-")
        try:
            start = time.perf_counter()
            with (
                TelemetrySession(meta=stamp, force_install=True) as telemetry,
                SLOSession(meta=stamp, force_log=True) as slo,
                TimeSeriesSession(meta=stamp, force_install=True) as ts,
            ):
                run_experiment(experiment, scale=scale, seed=seed)
            bundle = save_run(
                RunStore(tmp), stamp,
                telemetry=telemetry, slo=slo, timeseries=ts,
            )
            walls.append(time.perf_counter() - start)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        counters = {
            snap.name: sum(s.value for s in snap.samples)
            for snap in telemetry.registry.snapshot()
            if snap.name in TRACKED_COUNTERS
        }
        recorded = {
            "n_artifacts": len(bundle.artifacts),
            "n_bytes": sum(
                len(a.text.encode("utf-8")) for a in bundle.artifacts
            ),
        }
    wall = round(min(walls), 4)
    return {
        "wall_s": wall,
        "counters": counters,
        "rates": _rates(counters, wall),
        "bundle": recorded,
    }


def measure_save_run_overhead(
    experiment: str, scale: str, seed: int, rounds: int
) -> tuple[dict, dict]:
    """(save-run-off, save-run-on) entries from interleaved best-of pairs.

    Same discipline as :func:`measure_guard_overhead`: alternate the two
    variants so load drift cancels, then compare each side's best.
    """
    pairs = max(3, rounds)
    base = measure(experiment, scale, seed, 1)
    saved = measure_saved(experiment, scale, seed, 1)
    for _ in range(pairs - 1):
        base_again = measure(experiment, scale, seed, 1)
        saved_again = measure_saved(experiment, scale, seed, 1)
        if base_again["wall_s"] < base["wall_s"]:
            base = base_again
        if saved_again["wall_s"] < saved["wall_s"]:
            saved = saved_again
    return base, saved


def measure_guard_overhead(
    experiment: str, scale: str, seed: int, rounds: int
) -> tuple[dict, dict]:
    """(guard-off, guard-on) entries from interleaved best-of pairs.

    Machine load drifts over the minutes a bench run takes; measuring the
    two variants back to back per round (at least two rounds) and taking
    each side's best keeps the overhead ratio about the hook bus rather
    than about the machine.
    """
    pairs = max(3, rounds)
    base = measure(experiment, scale, seed, 1)
    guarded = measure_guarded(experiment, scale, seed, 1)
    for _ in range(pairs - 1):
        base_again = measure(experiment, scale, seed, 1)
        guarded_again = measure_guarded(experiment, scale, seed, 1)
        if base_again["wall_s"] < base["wall_s"]:
            base = base_again
        if guarded_again["wall_s"] < guarded["wall_s"]:
            guarded = guarded_again
    return base, guarded


def measure_kernel_training(
    scale: str, seed: int, journal: bool
) -> dict:
    """Wall time for the Fig-12 workload trainings, journal on or off.

    The unified event kernel has no "off" switch — every run dispatches
    through it — so the measurable ride-along is the write-ahead journal:
    one record plus an fsync per epoch boundary. Journal-on runs write
    into a throwaway directory that is removed afterwards.
    """
    import shutil
    import tempfile

    from repro.experiments.harness import get_scale
    from repro.kernel import RunJournal
    from repro.ml.models import workload
    from repro.workflow.job import training_envelope
    from repro.workflow.runner import profile_workload, run_training

    tmp = tempfile.mkdtemp(prefix="repro-bench-journal-") if journal else None
    n_records = 0
    try:
        start = time.perf_counter()
        for name in get_scale(scale).workloads:
            profile = profile_workload(name)
            budget = training_envelope(workload(name), profile).budget(
                CHAOS_BUDGET_MULTIPLE
            )
            wal = None
            if tmp is not None:
                wal = RunJournal.create(
                    Path(tmp) / f"{name}.journal",
                    run={"command": "bench", "workload": name},
                )
            try:
                run_training(
                    name, budget_usd=budget, seed=seed, profile=profile,
                    journal=wal,
                )
                if wal is not None:
                    n_records += wal.n_epochs_journaled
                    wal.commit()
            finally:
                if wal is not None:
                    wal.close()
        wall = round(time.perf_counter() - start, 4)
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)
    entry = {"wall_s": wall, "counters": {}, "rates": {}}
    if journal:
        entry["journal"] = {"n_epoch_records": n_records}
    return entry


def measure_kernel_overhead(
    scale: str, seed: int, rounds: int
) -> tuple[dict, dict]:
    """(journal-off, journal-on) entries from interleaved best-of pairs.

    Same discipline as :func:`measure_guard_overhead`, with more pairs:
    the journal's true cost (~100 fsyncs against seconds of training)
    sits well inside scheduler noise, so each side needs more samples
    for its best to converge on the real minimum.
    """
    pairs = max(8, rounds)
    base = measure_kernel_training(scale, seed, journal=False)
    journaled = measure_kernel_training(scale, seed, journal=True)
    for _ in range(pairs - 1):
        base_again = measure_kernel_training(scale, seed, journal=False)
        journaled_again = measure_kernel_training(scale, seed, journal=True)
        if base_again["wall_s"] < base["wall_s"]:
            base = base_again
        if journaled_again["wall_s"] < journaled["wall_s"]:
            journaled = journaled_again
    return base, journaled


def run_chaos_matrix(scale: str, seed: int) -> tuple[dict, list[str]]:
    """Fault-free vs default-chaos training per Fig-12 workload.

    Returns ``(entries, failures)``: one entry per workload with the clean
    and chaos JCTs (simulated seconds — deterministic, unlike wall-clock)
    and the fault/recovery counts, plus a failure line for every workload
    that crashed outright or inflated beyond ``CHAOS_INFLATION_LIMIT``.
    """
    from repro.common.errors import ReproError
    from repro.experiments.harness import get_scale
    from repro.faults import FaultPlan
    from repro.ml.models import workload
    from repro.workflow.job import training_envelope
    from repro.workflow.runner import profile_workload, run_training

    plan = FaultPlan.default_profile()
    entries: dict[str, dict] = {}
    failures: list[str] = []
    for name in get_scale(scale).workloads:
        profile = profile_workload(name)
        budget = training_envelope(workload(name), profile).budget(
            CHAOS_BUDGET_MULTIPLE
        )
        clean = run_training(
            name, budget_usd=budget, seed=seed, profile=profile
        ).result
        try:
            chaos = run_training(
                name, budget_usd=budget, seed=seed, profile=profile,
                fault_plan=plan,
            ).result
        except ReproError as exc:
            failures.append(f"{name}: chaos run failed to complete: {exc}")
            entries[name] = {"clean_jct_s": round(clean.jct_s, 4),
                             "error": str(exc)}
            continue
        inflation = chaos.jct_s / clean.jct_s if clean.jct_s > 0 else float("inf")
        summary = chaos.extra.get("faults", {})
        entries[name] = {
            "clean_jct_s": round(clean.jct_s, 4),
            "chaos_jct_s": round(chaos.jct_s, 4),
            "inflation": round(inflation, 4),
            "n_faults": summary.get("n_faults", 0),
            "n_recoveries": summary.get("n_recoveries", 0),
            "restarts": chaos.n_restarts,
        }
        print(f"  chaos:{name:20s} clean {clean.jct_s:9.2f} s -> "
              f"chaos {chaos.jct_s:9.2f} s ({inflation:.2f}x, "
              f"{summary.get('n_faults', 0)} faults)")
        if inflation > CHAOS_INFLATION_LIMIT:
            failures.append(
                f"{name}: chaos JCT inflation {inflation:.2f}x exceeds "
                f"{CHAOS_INFLATION_LIMIT:.2f}x limit"
            )
        if not summary.get("n_faults"):
            failures.append(
                f"{name}: default profile injected no faults — the chaos "
                "matrix is not exercising recovery"
            )
    return entries, failures


def run_combined_chaos_scenario(scale: str, seed: int) -> tuple[dict, list[str]]:
    """Combined scenario: invocation timeout + storage throttle + mid-run kill.

    Layers three fault axes the matrix otherwise exercises one at a time:
    an invocation timeout, a long storage throttle window, and a simulated
    SIGKILL halfway through a journaled run (the journal is truncated to
    half its epoch records plus a torn half-line, then resumed). Runs the
    first Fig-12 workload of the scale and gates on (a) the resumed run
    finishing with JCT <= ``CHAOS_INFLATION_LIMIT`` x fault-free and
    (b) the resumed journal matching the uninterrupted run's byte for byte.
    """
    import shutil
    import tempfile

    from repro.common.errors import ReproError
    from repro.experiments.harness import get_scale
    from repro.faults.plan import (
        ANY_STORAGE, FaultPlan, StorageFaultSpec, ThrottleWindow,
    )
    from repro.kernel import RunJournal
    from repro.ml.models import workload
    from repro.workflow.job import training_envelope
    from repro.workflow.runner import profile_workload, run_training

    name = get_scale(scale).workloads[0]
    plan = FaultPlan(
        name="combined-timeout-throttle-kill",
        invocation_timeout_s=30.0,
        storage={
            ANY_STORAGE: StorageFaultSpec(
                transient_prob=0.05,
                max_errors=2,
                error_timeout_s=1.0,
                throttle_windows=(
                    ThrottleWindow(start_s=10.0, duration_s=300.0,
                                   slowdown=2.0),
                ),
            )
        },
    )
    profile = profile_workload(name)
    budget = training_envelope(workload(name), profile).budget(
        CHAOS_BUDGET_MULTIPLE
    )
    clean = run_training(
        name, budget_usd=budget, seed=seed, profile=profile
    ).result

    failures: list[str] = []
    tmp = Path(tempfile.mkdtemp(prefix="repro-bench-combined-"))
    try:
        journal_path = tmp / "combined.journal"
        header = {"command": "bench-combined", "workload": name}
        try:
            with RunJournal.create(journal_path, run=header) as wal:
                run_training(
                    name, budget_usd=budget, seed=seed, profile=profile,
                    fault_plan=plan, journal=wal,
                )
                wal.commit()
        except ReproError as exc:
            return ({"error": str(exc)}, [
                f"{name}: combined scenario failed before the kill: {exc}"
            ])
        finished = journal_path.read_bytes()
        lines = finished.decode().splitlines()
        n_epochs = sum(1 for s in lines if '"kind": "epoch"' in s)

        # Simulated SIGKILL at the halfway epoch boundary: keep half the
        # fsynced records plus a torn half-written line, then resume.
        kept = lines[: 1 + n_epochs // 2]
        torn = lines[1 + n_epochs // 2][:40]
        journal_path.write_bytes(("\n".join(kept) + "\n" + torn).encode())
        try:
            with RunJournal.open_resume(journal_path) as wal:
                resumed = run_training(
                    name, budget_usd=budget, seed=seed, profile=profile,
                    fault_plan=plan, journal=wal,
                ).result
                wal.commit()
        except ReproError as exc:
            return ({"error": str(exc)}, [
                f"{name}: combined scenario failed to resume: {exc}"
            ])
        if journal_path.read_bytes() != finished:
            failures.append(
                f"{name}: resumed journal diverges from the uninterrupted "
                "run's bytes"
            )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    inflation = (
        resumed.jct_s / clean.jct_s if clean.jct_s > 0 else float("inf")
    )
    summary = resumed.extra.get("faults", {})
    entry = {
        "workload": name,
        "clean_jct_s": round(clean.jct_s, 4),
        "chaos_jct_s": round(resumed.jct_s, 4),
        "inflation": round(inflation, 4),
        "n_faults": summary.get("n_faults", 0),
        "n_recoveries": summary.get("n_recoveries", 0),
        "kill_epoch": n_epochs // 2,
        "n_epochs": n_epochs,
    }
    print(f"  chaos:combined({name}) clean {clean.jct_s:9.2f} s -> "
          f"resumed {resumed.jct_s:9.2f} s ({inflation:.2f}x, "
          f"killed at epoch {n_epochs // 2}/{n_epochs})")
    if inflation > CHAOS_INFLATION_LIMIT:
        failures.append(
            f"{name}: combined-scenario JCT inflation {inflation:.2f}x "
            f"exceeds {CHAOS_INFLATION_LIMIT:.2f}x limit"
        )
    if not summary.get("n_faults"):
        failures.append(
            f"{name}: combined scenario injected no faults — timeout and "
            "throttle axes are not engaging"
        )
    return entry, failures


def measure_flow_lint(rounds: int) -> dict:
    """Best-of-``rounds`` wall time for the whole-repo flow analysis.

    Runs the full interprocedural pass — project index, call graph,
    clock-taint fixpoint, RNG hygiene, shard audit, schema cross-check —
    over ``src/repro``, exactly what the ``flow-analysis`` CI step and
    ``repro lint --flow`` execute. Counters record the analyzed file and
    finding counts so a silent scope regression (the walker skipping
    half the tree, say) shows up as counter drift in the bench document.
    """
    from repro.analysis import analyze_flow

    walls: list[float] = []
    n_files = 0
    n_findings = 0
    for _ in range(rounds):
        start = time.perf_counter()
        result = analyze_flow([REPO_ROOT / "src" / "repro"])
        walls.append(time.perf_counter() - start)
        n_files = result.files_analyzed
        n_findings = len(result.findings)
    wall = round(min(walls), 4)
    counters = {
        "repro_flow_files_analyzed_total": float(n_files),
        "repro_flow_findings_total": float(n_findings),
    }
    return {"wall_s": wall, "counters": counters,
            "rates": _rates(counters, wall)}


def run_suite(
    experiments: list[str], scale: str, seed: int, rounds: int,
    slowdown: float = 1.0,
) -> dict:
    results: dict[str, dict] = {}
    for exp in experiments:
        entry = measure(exp, scale, seed, rounds)
        if slowdown != 1.0:
            entry["wall_s"] = round(entry["wall_s"] * slowdown, 4)
        results[exp] = entry
        print(f"  {exp:20s} {entry['wall_s']:9.3f} s")
    return {
        "schema": JSON_SCHEMA,
        "scale": scale,
        "seed": seed,
        "rounds": rounds,
        "experiments": results,
    }


def compare(current: dict, baseline: dict, threshold: float
            ) -> tuple[list[str], list[str]]:
    """Returns (timing regressions, informational drift notes)."""
    regressions: list[str] = []
    notes: list[str] = []
    if baseline.get("scale") != current["scale"] or baseline.get("seed") != current["seed"]:
        notes.append(
            f"baseline ran at scale={baseline.get('scale')} seed={baseline.get('seed')}; "
            f"current is scale={current['scale']} seed={current['seed']} — skipping compare"
        )
        return regressions, notes
    base_entries = baseline.get("experiments", {})
    for exp, entry in current["experiments"].items():
        base = base_entries.get(exp)
        if base is None:
            notes.append(f"{exp}: new experiment, no baseline entry")
            continue
        wall, base_wall = entry["wall_s"], base["wall_s"]
        if base_wall >= MIN_COMPARABLE_WALL_S and wall > base_wall * threshold:
            regressions.append(
                f"{exp}: {wall:.3f} s vs baseline {base_wall:.3f} s "
                f"({wall / base_wall:.2f}x > {threshold:.2f}x threshold)"
            )
        for name, value in entry["counters"].items():
            base_value = base.get("counters", {}).get(name)
            if base_value is not None and base_value != value:
                notes.append(
                    f"{exp}: counter {name} changed "
                    f"{base_value:g} -> {value:g} (behavioral drift; "
                    "update the baseline if intended)"
                )
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--experiments",
        help="comma-separated experiment ids (default: the full registry)",
    )
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "paper"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rounds", type=int, default=1,
                        help="timing rounds per experiment (best-of)")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="fail when wall time exceeds baseline x this")
    parser.add_argument("--out", type=Path, default=DEFAULT_RESULTS,
                        help="where to write the bench document")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline to compare against (default: --out)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="record without comparing")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (CI smoke mode)")
    parser.add_argument("--inject-slowdown", type=float, default=1.0,
                        metavar="FACTOR",
                        help="multiply measured wall times (self-test hook)")
    parser.add_argument("--chaos", action="store_true",
                        help="also run the fault-injection matrix: every "
                             "Fig-12 workload under the default chaos "
                             "profile, gated on completion and JCT "
                             f"inflation <= {CHAOS_INFLATION_LIMIT}x")
    args = parser.parse_args(argv)

    available = REGISTRY.available()
    if args.experiments:
        experiments = [e.strip() for e in args.experiments.split(",") if e.strip()]
        unknown = sorted(set(experiments) - set(available))
        if unknown:
            parser.error(f"unknown experiments: {', '.join(unknown)}")
    else:
        experiments = list(available)

    baseline_path = args.baseline if args.baseline is not None else args.out
    baseline = None
    if not args.update_baseline and baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())

    print(f"benchmarking {len(experiments)} experiment(s) at scale={args.scale} "
          f"seed={args.seed} rounds={args.rounds}")
    current = run_suite(
        experiments, args.scale, args.seed, args.rounds,
        slowdown=args.inject_slowdown,
    )

    # SLO-guard overhead probe: same experiment, live hook bus attached.
    # Compared within-run against a freshly interleaved guard-off
    # measurement, so the check is immune both to machine-to-machine speed
    # differences and to load drift across the minutes of a full suite.
    guard_regressions: list[str] = []
    if GUARD_BASE_EXPERIMENT in current["experiments"]:
        base, entry = measure_guard_overhead(
            GUARD_BASE_EXPERIMENT, args.scale, args.seed, args.rounds
        )
        if args.inject_slowdown != 1.0:
            entry["wall_s"] = round(entry["wall_s"] * args.inject_slowdown, 4)
            base["wall_s"] = round(base["wall_s"] * args.inject_slowdown, 4)
        current["experiments"][GUARD_ENTRY] = entry
        print(f"  {GUARD_ENTRY:20s} {entry['wall_s']:9.3f} s"
              f"  (interleaved guard-off {base['wall_s']:.3f} s)")
        base_wall = base["wall_s"]
        if (
            base_wall >= MIN_COMPARABLE_WALL_S
            and entry["wall_s"] > base_wall * GUARD_OVERHEAD_RATIO
        ):
            guard_regressions.append(
                f"{GUARD_ENTRY}: {entry['wall_s']:.3f} s vs guard-off "
                f"{base_wall:.3f} s ({entry['wall_s'] / base_wall:.2f}x > "
                f"{GUARD_OVERHEAD_RATIO:.2f}x hook-bus overhead budget)"
            )

    # Profiler overhead probe: the same experiment with the hot-path
    # profiler installed. The phase hooks are supposed to be cheap enough
    # to leave on for any bench run; this keeps that promise honest.
    if GUARD_BASE_EXPERIMENT in current["experiments"]:
        base, entry = measure_profile_overhead(
            GUARD_BASE_EXPERIMENT, args.scale, args.seed, args.rounds
        )
        if args.inject_slowdown != 1.0:
            entry["wall_s"] = round(entry["wall_s"] * args.inject_slowdown, 4)
            base["wall_s"] = round(base["wall_s"] * args.inject_slowdown, 4)
        current["experiments"][PROFILE_ENTRY] = entry
        print(f"  {PROFILE_ENTRY:20s} {entry['wall_s']:9.3f} s"
              f"  (interleaved profiler-off {base['wall_s']:.3f} s)")
        base_wall = base["wall_s"]
        if (
            base_wall >= MIN_COMPARABLE_WALL_S
            and entry["wall_s"] > base_wall * PROFILE_OVERHEAD_RATIO
        ):
            guard_regressions.append(
                f"{PROFILE_ENTRY}: {entry['wall_s']:.3f} s vs profiler-off "
                f"{base_wall:.3f} s ({entry['wall_s'] / base_wall:.2f}x > "
                f"{PROFILE_OVERHEAD_RATIO:.2f}x phase-hook overhead budget)"
            )

    # Time-series sampler overhead probe: the same experiment with the
    # simulated-time sampler recording every epoch boundary and bus event.
    # The null-object default means runs without the sampler pay one
    # attribute check; this keeps the sampler-on path cheap too.
    if GUARD_BASE_EXPERIMENT in current["experiments"]:
        base, entry = measure_sampler_overhead(
            GUARD_BASE_EXPERIMENT, args.scale, args.seed, args.rounds
        )
        if args.inject_slowdown != 1.0:
            entry["wall_s"] = round(entry["wall_s"] * args.inject_slowdown, 4)
            base["wall_s"] = round(base["wall_s"] * args.inject_slowdown, 4)
        current["experiments"][TS_ENTRY] = entry
        print(f"  {TS_ENTRY:20s} {entry['wall_s']:9.3f} s"
              f"  (interleaved sampler-off {base['wall_s']:.3f} s)")
        base_wall = base["wall_s"]
        if (
            base_wall >= MIN_COMPARABLE_WALL_S
            and entry["wall_s"] > base_wall * TS_OVERHEAD_RATIO
        ):
            guard_regressions.append(
                f"{TS_ENTRY}: {entry['wall_s']:.3f} s vs sampler-off "
                f"{base_wall:.3f} s ({entry['wall_s'] / base_wall:.2f}x > "
                f"{TS_OVERHEAD_RATIO:.2f}x sampling overhead budget)"
            )

    # Run-bundle probe: the same experiment with every --save-run collector
    # forced on plus bundle serialization and the store write. Prices the
    # full provenance ride-along, not just one collector.
    if GUARD_BASE_EXPERIMENT in current["experiments"]:
        base, entry = measure_save_run_overhead(
            GUARD_BASE_EXPERIMENT, args.scale, args.seed, args.rounds
        )
        if args.inject_slowdown != 1.0:
            entry["wall_s"] = round(entry["wall_s"] * args.inject_slowdown, 4)
            base["wall_s"] = round(base["wall_s"] * args.inject_slowdown, 4)
        current["experiments"][SAVE_RUN_ENTRY] = entry
        print(f"  {SAVE_RUN_ENTRY:20s} {entry['wall_s']:9.3f} s"
              f"  (interleaved save-run-off {base['wall_s']:.3f} s)")
        base_wall = base["wall_s"]
        if (
            base_wall >= MIN_COMPARABLE_WALL_S
            and entry["wall_s"] > base_wall * SAVE_RUN_OVERHEAD_RATIO
        ):
            guard_regressions.append(
                f"{SAVE_RUN_ENTRY}: {entry['wall_s']:.3f} s vs save-run-off "
                f"{base_wall:.3f} s ({entry['wall_s'] / base_wall:.2f}x > "
                f"{SAVE_RUN_OVERHEAD_RATIO:.2f}x run-bundle overhead budget)"
            )

    # Event-kernel probe: the same workloads re-trained with the run
    # journal recording (and fsyncing) every epoch boundary, against
    # interleaved journal-off twins. Everything dispatches through the
    # unified kernel either way; the delta prices crash consistency.
    if GUARD_BASE_EXPERIMENT in current["experiments"]:
        base, entry = measure_kernel_overhead(
            args.scale, args.seed, args.rounds
        )
        if args.inject_slowdown != 1.0:
            entry["wall_s"] = round(entry["wall_s"] * args.inject_slowdown, 4)
            base["wall_s"] = round(base["wall_s"] * args.inject_slowdown, 4)
        current["experiments"][KERNEL_ENTRY] = entry
        print(f"  {KERNEL_ENTRY:20s} {entry['wall_s']:9.3f} s"
              f"  (interleaved journal-off {base['wall_s']:.3f} s)")
        base_wall = base["wall_s"]
        if (
            base_wall >= MIN_COMPARABLE_WALL_S
            and entry["wall_s"] > base_wall * KERNEL_OVERHEAD_RATIO
        ):
            guard_regressions.append(
                f"{KERNEL_ENTRY}: {entry['wall_s']:.3f} s vs journal-off "
                f"{base_wall:.3f} s ({entry['wall_s'] / base_wall:.2f}x > "
                f"{KERNEL_OVERHEAD_RATIO:.2f}x journal overhead budget)"
            )

    # Flow-analysis wall-time probe: the interprocedural lint layer gates
    # CI on every change, so its own cost is a budgeted quantity. Unlike
    # the overhead probes above this is an absolute budget, not a ratio —
    # the pass has no "off" variant to interleave against.
    entry = measure_flow_lint(args.rounds)
    if args.inject_slowdown != 1.0:
        entry["wall_s"] = round(entry["wall_s"] * args.inject_slowdown, 4)
    current["experiments"][FLOW_ENTRY] = entry
    print(f"  {FLOW_ENTRY:20s} {entry['wall_s']:9.3f} s"
          f"  (budget {FLOW_BUDGET_WALL_S:.1f} s)")
    # Like the baseline compare (and unlike the deterministic chaos
    # verdicts), this is a wall-clock gate: --update-baseline records
    # without judging it.
    if not args.update_baseline and entry["wall_s"] > FLOW_BUDGET_WALL_S:
        guard_regressions.append(
            f"{FLOW_ENTRY}: {entry['wall_s']:.3f} s exceeds the "
            f"{FLOW_BUDGET_WALL_S:.1f} s whole-repo flow-analysis budget"
        )

    chaos_failures: list[str] = []
    if args.chaos:
        print("chaos matrix (default fault profile)")
        chaos_entries, chaos_failures = run_chaos_matrix(args.scale, args.seed)
        combined_entry, combined_failures = run_combined_chaos_scenario(
            args.scale, args.seed
        )
        chaos_entries["combined-timeout-throttle-kill"] = combined_entry
        chaos_failures += combined_failures
        current["chaos"] = chaos_entries

    exit_code = 0
    if baseline is None:
        print("no baseline to compare against; recording only")
        regressions = []
    else:
        regressions, notes = compare(current, baseline, args.threshold)
        for note in notes:
            print(f"note: {note}")
    regressions += guard_regressions
    if regressions:
        for regression in regressions:
            print(f"REGRESSION: {regression}")
        exit_code = 0 if args.warn_only else 1
    elif baseline is not None:
        print(f"no regressions vs {baseline_path}")
    if chaos_failures:
        # Chaos verdicts compare simulated JCTs — deterministic for a
        # (scale, seed), so they gate even under --warn-only.
        for failure in chaos_failures:
            print(f"CHAOS FAILURE: {failure}")
        exit_code = 1

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
