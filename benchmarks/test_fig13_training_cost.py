"""Bench: Fig. 13 — training cost given a QoS constraint."""


def test_fig13(run_and_record):
    result = run_and_record("fig13")
    for name, comp in result.series.items():
        qos = comp["ce-scaling"]["qos_s"]
        compliant = {m: r for m, r in comp.items() if r["jct_s"] <= qos * 1.05}
        assert "ce-scaling" in compliant
        best = min(compliant.values(), key=lambda r: r["cost_usd"])
        assert comp["ce-scaling"]["cost_usd"] <= best["cost_usd"] * 1.15
