"""Bench: Fig. 4 — offline vs online epoch-prediction error."""

import math


def test_fig04(run_and_record):
    result = run_and_record("fig04", scale="small")
    offline = result.series["offline"]
    online = result.series["online"]
    # Paper band: offline errors are tens of percent; online prediction at
    # 80% progress is far more accurate than offline for most models.
    assert all(err > 0.05 for err in offline.values())
    wins = sum(
        1
        for name, err in offline.items()
        if not math.isnan(online[name][0.8]) and online[name][0.8] < err
    )
    assert wins >= len(offline) - 1
