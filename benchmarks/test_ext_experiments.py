"""Bench: the beyond-the-paper extension experiments."""


def test_ext_bohb(run_and_record):
    result = run_and_record("ext_bohb")
    s = result.series
    # BOHB's much smaller trial pool (HyperBand brackets vs SHA's 64-wide
    # first stage) still lands a clearly-above-random configuration; SHA's
    # wider pool wins on quality at this budget, as expected.
    assert s["bohb"]["quality"] >= 0.5
    assert s["bohb"]["quality"] >= s["sha"]["quality"] - 0.35
    assert s["bohb"]["cost_usd"] > 0


def test_ext_sensitivity(run_and_record):
    result = run_and_record("ext_sensitivity")
    s = result.series
    for name, knobs in s.items():
        # Doubling/halving the Lambda price scales costs but the spread is
        # bounded (compute is only a share of total cost).
        assert 1.0 <= knobs["lambda_price"]["cost_spread"] < 4.0
        # At least one knob leaves the decision completely stable.
        assert any(k["stable"] for k in knobs.values())
