"""Bench: Table I — storage service characteristics."""


def test_table1(run_and_record):
    result = run_and_record("table1")
    rows = {r["service"]: r for r in result.series["rows"]}
    assert rows["s3"]["latency"] == "High"
    assert rows["vmps"]["latency"] == "Low"
    assert rows["s3"]["cost_tier"] == "$"
    assert rows["vmps"]["cost_tier"] == "$$$"
