"""Bench: Fig. 19/20 — analytical model vs simulated measurement."""


def test_fig19_20(run_and_record):
    result = run_and_record("fig19_20", scale="small")
    s = result.series
    # Paper bands: time 0.56-4.9% / cost 0.2-3.72% (fn sweep) and
    # time 2.1-4.3% / cost 1.5-7.6% (memory sweep). Allow headroom for the
    # simulator's barrier/noise effects.
    for fig in ("fig19", "fig20"):
        assert max(s[fig]["time"]) < 12.0
        assert max(s[fig]["cost"]) < 12.0
