"""Bench: Fig. 18 — CE-scaling under fixed external storage."""


def test_fig18(run_and_record):
    result = run_and_record("fig18")
    s = result.series
    # DynamoDB gate: N/A above 400 KB models, available for LR.
    assert s["mobilenet-cifar10"]["dynamodb"] is None
    assert s["lr-higgs"]["dynamodb"] is not None
    # Storage choice materially changes both JCT and cost.
    mn = {k: v for k, v in s["mobilenet-cifar10"].items() if v is not None}
    jcts = [r["jct_s"] for r in mn.values()]
    assert max(jcts) > 1.3 * min(jcts)
    # The best service differs between the small and the large model
    # (Finding 3: the trade-off depends on the ML model).
    lr_best = min(
        (k for k, v in s["lr-higgs"].items() if v is not None),
        key=lambda k: s["lr-higgs"][k]["cost_usd"],
    )
    mn_best = min(mn, key=lambda k: mn[k]["cost_usd"])
    assert lr_best != "s3" or mn_best != "s3"
