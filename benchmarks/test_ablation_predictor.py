"""Ablation: online-predictor design choices (DESIGN.md §6).

Compares the shipped predictor (grid-floor inverse power law with the
workload prior, median-clamped across families) against single raw curve
families, at 30% training progress — where the scheduler's decisions hurt
the most.
"""

import numpy as np

from repro.ml.curves import LossCurveSampler
from repro.ml.models import workload
from repro.training.online_predictor import OnlinePredictor
from repro.workflow.metrics import ComparisonTable

VARIANTS = {
    "full (prior+grid+median)": dict(prior=True, families=None),
    "ipl-grid only, no prior": dict(prior=False, families=("ipl_grid",)),
    "curve_fit ipl only": dict(prior=False, families=("inverse_power_law",)),
    "exponential only": dict(prior=False, families=("exponential",)),
    "hyperbolic only": dict(prior=False, families=("hyperbolic",)),
}

WORKLOADS = ("mobilenet-cifar10", "resnet50-cifar10")


def _errors(w, variant, n_seeds=8, progress=0.3):
    errs = []
    for seed in range(n_seeds):
        true = LossCurveSampler(
            w.curve_params(), seed=seed, run_label=("train", w.name),
            anchor_target=w.target_loss,
        ).epochs_to_target(w.target_loss)
        sampler = LossCurveSampler(
            w.curve_params(), seed=seed, run_label=("train", w.name),
            anchor_target=w.target_loss,
        )
        kw = {}
        if variant["prior"]:
            kw["prior"] = w.curve_params()
        if variant["families"]:
            kw["families"] = variant["families"]
        predictor = OnlinePredictor(w.target_loss, **kw)
        for _ in range(max(4, int(true * progress))):
            predictor.observe(sampler.next_loss())
        try:
            errs.append(abs(predictor.predict_total_epochs() - true) / true)
        except Exception:
            errs.append(2.0)  # failed fit counted as a 200% miss
    return float(np.mean(errs))


def test_predictor_family_ablation(benchmark):
    table = ComparisonTable(
        title="Mean prediction error at 30% progress",
        columns=["variant"] + list(WORKLOADS),
    )

    def run_all():
        return {
            name: [_errors(workload(w), variant) for w in WORKLOADS]
            for name, variant in VARIANTS.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, errs in results.items():
        table.add_row(name, *[e * 100 for e in errs])
    print("\n" + table.render())
    full = np.mean(results["full (prior+grid+median)"])
    for name, errs in results.items():
        if name != "full (prior+grid+median)":
            # The shipped design must not lose to any single raw family.
            assert full <= np.mean(errs) * 1.1
