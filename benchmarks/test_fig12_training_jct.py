"""Bench: Fig. 12 — training JCT given a budget (with comm breakdown)."""


def test_fig12(run_and_record):
    result = run_and_record("fig12")
    for name, comp in result.series.items():
        budget = comp["ce-scaling"]["budget_usd"]
        # CE satisfies the budget and beats Siren's S3-bound execution.
        assert comp["ce-scaling"]["cost_usd"] <= budget * 1.02
        assert comp["ce-scaling"]["jct_s"] < comp["siren"]["jct_s"]
        # Siren's communication overhead dominates (S3 sync).
        assert comp["siren"]["comm_s"] >= comp["ce-scaling"]["comm_s"]
