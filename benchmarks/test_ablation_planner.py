"""Ablation: greedy heuristic planner vs an exact DP reference.

The paper's Algorithm 1 trades optimality for speed. This bench measures
the optimality gap against a discretized-DP solution of the same
multiple-choice knapsack (DESIGN.md §6).
"""

from repro.tuning.exact import solve_exact
from repro.tuning.greedy_planner import GreedyHeuristicPlanner
from repro.tuning.plan import Objective, PartitionPlan, evaluate_plan
from repro.tuning.sha import SHASpec
from repro.workflow.metrics import ComparisonTable
from repro.workflow.runner import profile_workload


def _compare(benchmark):
    profile = profile_workload("lr-higgs")
    spec = SHASpec(256, 2, 2)
    cheap = evaluate_plan(
        PartitionPlan.uniform(profile.cheapest(), spec.n_stages), spec
    )
    table = ComparisonTable(
        title="Greedy vs exact DP",
        columns=["objective", "constraint", "greedy", "exact_dp", "gap_%"],
    )
    gaps = []

    def run_all():
        rows = []
        for mult in (1.1, 1.5, 2.5):
            budget = cheap.cost_usd * mult
            greedy = GreedyHeuristicPlanner().plan(
                profile.pareto, spec, Objective.MIN_JCT_GIVEN_BUDGET,
                budget_usd=budget,
            )
            exact = solve_exact(
                profile.pareto, spec, Objective.MIN_JCT_GIVEN_BUDGET,
                budget_usd=budget,
            )
            rows.append(("min-JCT", f"budget x{mult}",
                         greedy.evaluation.jct_s, exact.jct_s))
        for frac in (0.3, 0.6):
            qos = cheap.jct_s * frac
            greedy = GreedyHeuristicPlanner().plan(
                profile.pareto, spec, Objective.MIN_COST_GIVEN_QOS, qos_s=qos
            )
            exact = solve_exact(
                profile.pareto, spec, Objective.MIN_COST_GIVEN_QOS, qos_s=qos
            )
            rows.append(("min-cost", f"qos x{frac}",
                         greedy.evaluation.cost_usd, exact.cost_usd))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for obj, constraint, greedy_v, exact_v in rows:
        gap = (greedy_v / exact_v - 1.0) * 100
        gaps.append(gap)
        table.add_row(obj, constraint, greedy_v, exact_v, gap)
    print("\n" + table.render())
    return gaps


def test_greedy_optimality_gap(benchmark):
    gaps = _compare(benchmark)
    # Greedy stays within 35% of the (discretized) optimum everywhere and
    # within a few percent on most instances.
    assert max(gaps) < 35.0
    assert sum(g < 10.0 for g in gaps) >= len(gaps) - 1
