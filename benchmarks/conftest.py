"""Benchmark-suite fixtures: runs each paper experiment once under
pytest-benchmark and archives the regenerated tables."""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.registry import run_experiment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def run_and_record(benchmark, results_dir):
    """Run one experiment under the benchmark timer, archive its tables,
    and return the ExperimentResult for shape assertions."""

    def _run(experiment: str, scale: str = "tiny", seed: int = 0):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment,),
            kwargs={"scale": scale, "seed": seed},
            rounds=1,
            iterations=1,
        )
        rendered = result.render()
        (results_dir / f"{experiment}.txt").write_text(rendered + "\n")
        print("\n" + rendered)
        return result

    return _run
